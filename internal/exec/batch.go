package exec

import (
	"streamrel/internal/expr"
	"streamrel/internal/types"
)

// Batched execution fast path. The Volcano Next contract costs one
// virtual call — and for Filter/Project one expression-context
// allocation — per row; on the ingest hot path (window fires evaluate a
// plan over every closing window) that dominates the profile. Operators
// that can produce rows in bulk additionally implement Batcher; pull
// consumers (Drain, HashAgg) use it when present and fall back to Next
// otherwise, so the two paths always produce identical rows.

// Batcher is an optional batched interface on Operator. NextBatch
// returns the next non-empty chunk of rows, or nil at end of stream.
// The returned slice (the container, not the Row values) is owned by
// the operator and is valid only until the next NextBatch call; callers
// that retain rows must copy the slice header, and callers must not mix
// Next and NextBatch on the same operator.
type Batcher interface {
	NextBatch() ([]types.Row, error)
}

// nextBatch pulls a chunk from op: its own batches when it implements
// Batcher, else a single row via Next staged in *buf (so non-batched
// children keep their exact pull cadence and allocation profile).
// Returns nil at end of stream; the slice is valid until the next call.
func nextBatch(op Operator, buf *[]types.Row) ([]types.Row, error) {
	if b, ok := op.(Batcher); ok {
		return b.NextBatch()
	}
	row, err := op.Next()
	if err != nil || row == nil {
		return nil, err
	}
	if *buf == nil {
		*buf = make([]types.Row, 1)
	}
	(*buf)[0] = row
	return (*buf)[:1], nil
}

// NextBatch implements Batcher: the remaining rows in one chunk.
func (v *Values) NextBatch() ([]types.Row, error) { return tailBatch(v.Rows, &v.pos) }

// NextBatch implements Batcher: the remaining rows in one chunk.
func (r *Relation) NextBatch() ([]types.Row, error) { return tailBatch(r.Rows, &r.pos) }

// NextBatch implements Batcher: the remaining rows in one chunk.
func (s *SeqScan) NextBatch() ([]types.Row, error) { return tailBatch(s.rows, &s.pos) }

// NextBatch implements Batcher: the remaining rows in one chunk.
func (s *IndexScan) NextBatch() ([]types.Row, error) { return tailBatch(s.rows, &s.pos) }

func tailBatch(rows []types.Row, pos *int) ([]types.Row, error) {
	if *pos >= len(rows) {
		return nil, nil
	}
	out := rows[*pos:]
	*pos = len(rows)
	return out, nil
}

// NextBatch implements Batcher: the predicate is evaluated over a whole
// child chunk with one hoisted expression context, and qualifying row
// headers are gathered into a reused output buffer.
func (f *Filter) NextBatch() ([]types.Row, error) {
	ec := expr.Ctx{WindowClose: f.ctx.WindowClose, Now: f.ctx.Now}
	for {
		in, err := nextBatch(f.Child, &f.inBuf)
		if err != nil || in == nil {
			return nil, err
		}
		out := f.buf[:0]
		for _, row := range in {
			ec.Row = row
			v, err := f.Pred.Eval(&ec)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.Bool() {
				out = append(out, row)
			}
		}
		f.buf = out
		if len(out) > 0 {
			return out, nil
		}
	}
}

// NextBatch implements Batcher: output expressions are evaluated over a
// whole child chunk with one hoisted expression context, and the output
// rows are carved from one flat datum block per chunk. The rows are
// freshly allocated (consumers retain them); only the []Row container
// is reused.
func (p *Project) NextBatch() ([]types.Row, error) {
	in, err := nextBatch(p.Child, &p.inBuf)
	if err != nil || in == nil {
		return nil, err
	}
	ec := expr.Ctx{WindowClose: p.ctx.WindowClose, Now: p.ctx.Now}
	blk := types.NewRowBlock(len(in), len(p.Exprs))
	out := p.buf[:0]
	for _, row := range in {
		ec.Row = row
		dst := blk.Row()
		for i, e := range p.Exprs {
			if dst[i], err = e.Eval(&ec); err != nil {
				return nil, err
			}
		}
		out = append(out, dst)
	}
	p.buf = out
	return out, nil
}
