package exec

import (
	"time"

	"streamrel/internal/types"
)

// OpStat is one operator's execution statistics, filled in as the
// instrumented tree runs. Elapsed is inclusive of children (they run
// inside the parent's Open/Next), which matches EXPLAIN ANALYZE "actual
// time" reporting elsewhere.
type OpStat struct {
	// Name is the operator kind (SeqScan, HashJoin, …).
	Name string
	// Depth is the operator's depth in the plan tree (root = 0).
	Depth int
	// Rows counts rows the operator emitted from Next.
	Rows int64
	// Elapsed is wall time spent inside Open+Next, children included.
	Elapsed time.Duration
}

// Instrument wraps every operator in the tree with a row/time counter and
// returns the wrapped root plus the per-operator stats in pre-order
// (parent before children). The tree must not be shared with another
// execution: children are re-linked to their wrapped forms in place.
func Instrument(op Operator) (Operator, []*OpStat) {
	var stats []*OpStat
	root := instrument(op, &stats, 0)
	return root, stats
}

func instrument(op Operator, stats *[]*OpStat, depth int) Operator {
	if op == nil {
		return nil
	}
	st := &OpStat{Name: opName(op), Depth: depth}
	*stats = append(*stats, st)
	switch o := op.(type) {
	case *Filter:
		o.Child = instrument(o.Child, stats, depth+1)
	case *Project:
		o.Child = instrument(o.Child, stats, depth+1)
	case *Limit:
		o.Child = instrument(o.Child, stats, depth+1)
	case *Sort:
		o.Child = instrument(o.Child, stats, depth+1)
	case *Distinct:
		o.Child = instrument(o.Child, stats, depth+1)
	case *HashAgg:
		o.Child = instrument(o.Child, stats, depth+1)
	case *SetOp:
		o.Left = instrument(o.Left, stats, depth+1)
		o.Right = instrument(o.Right, stats, depth+1)
	case *HashJoin:
		o.Left = instrument(o.Left, stats, depth+1)
		o.Right = instrument(o.Right, stats, depth+1)
	case *NestedLoopJoin:
		o.Left = instrument(o.Left, stats, depth+1)
		o.Right = instrument(o.Right, stats, depth+1)
	}
	return &counted{op: op, stat: st}
}

// opName names an operator kind for ANALYZE output.
func opName(op Operator) string {
	switch o := op.(type) {
	case *Filter:
		return "Filter"
	case *Project:
		return "Project"
	case *Limit:
		return "Limit"
	case *Sort:
		return "Sort"
	case *Distinct:
		return "Distinct"
	case *HashAgg:
		return "HashAgg"
	case *SetOp:
		switch o.Kind {
		case SetUnion:
			return "Union"
		case SetExcept:
			return "Except"
		case SetIntersect:
			return "Intersect"
		}
		return "SetOp"
	case *HashJoin:
		return "HashJoin" + joinSuffix(o.Type)
	case *NestedLoopJoin:
		return "NestedLoopJoin" + joinSuffix(o.Type)
	case *SeqScan:
		return "SeqScan"
	case *IndexScan:
		return "IndexScan"
	case *Values:
		return "Values"
	case *Relation:
		return "Relation"
	case *counted:
		return o.stat.Name
	}
	return "Operator"
}

func joinSuffix(t JoinType) string {
	switch t {
	case JoinLeft:
		return " (left)"
	case JoinRight:
		return " (right)"
	case JoinFull:
		return " (full)"
	case JoinCross:
		return " (cross)"
	}
	return ""
}

// counted decorates one operator, counting emitted rows and wall time.
type counted struct {
	op   Operator
	stat *OpStat
}

// Open implements Operator.
func (c *counted) Open(ctx *Ctx) error {
	start := time.Now()
	err := c.op.Open(ctx)
	c.stat.Elapsed += time.Since(start)
	return err
}

// Next implements Operator.
func (c *counted) Next() (types.Row, error) {
	start := time.Now()
	row, err := c.op.Next()
	c.stat.Elapsed += time.Since(start)
	if row != nil && err == nil {
		c.stat.Rows++
	}
	return row, err
}

// Close implements Operator.
func (c *counted) Close() error { return c.op.Close() }
