package exec

import (
	"streamrel/internal/expr"
	"streamrel/internal/storage"
	"streamrel/internal/types"
)

// Values produces a fixed list of rows; it backs VALUES lists and
// FROM-less SELECTs (one empty row).
type Values struct {
	Rows []types.Row
	pos  int
}

// Open implements Operator.
func (v *Values) Open(*Ctx) error { v.pos = 0; return nil }

// Next implements Operator.
func (v *Values) Next() (types.Row, error) {
	if v.pos >= len(v.Rows) {
		return nil, nil
	}
	r := v.Rows[v.pos]
	v.pos++
	return r, nil
}

// Close implements Operator.
func (v *Values) Close() error { return nil }

// Relation scans an in-memory slice of rows. Window closes materialize
// each window as a relation (the paper's Figure 1: "windows produce a
// sequence of tables") and feed it to the plan through this operator.
type Relation struct {
	Rows []types.Row
	pos  int
}

// Open implements Operator.
func (r *Relation) Open(*Ctx) error { r.pos = 0; return nil }

// Next implements Operator.
func (r *Relation) Next() (types.Row, error) {
	if r.pos >= len(r.Rows) {
		return nil, nil
	}
	row := r.Rows[r.pos]
	r.pos++
	return row, nil
}

// Close implements Operator.
func (r *Relation) Close() error { return nil }

// SeqScan reads every visible row of a heap under the execution snapshot.
type SeqScan struct {
	Heap *storage.Heap

	rows []types.Row
	pos  int
}

// Open implements Operator. The scan materializes under the snapshot up
// front; heaps are in-memory so this costs one pass either way and keeps
// Next allocation-free.
func (s *SeqScan) Open(ctx *Ctx) error {
	s.rows = s.rows[:0]
	s.pos = 0
	s.Heap.Scan(ctx.Snap, func(_ storage.RowID, r types.Row) bool {
		s.rows = append(s.rows, r)
		return true
	})
	return nil
}

// Next implements Operator.
func (s *SeqScan) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *SeqScan) Close() error { s.rows = nil; return nil }

// IndexScan reads rows whose index key lies in [Lo, Hi] (nil bounds are
// open), checking MVCC visibility against the heap.
type IndexScan struct {
	Heap *storage.Heap
	Tree *storage.BTree
	// Lo and Hi are single-column bounds on the index's first column.
	Lo, Hi *expr.Scalar

	rows []types.Row
	pos  int
}

// Open implements Operator.
func (s *IndexScan) Open(ctx *Ctx) error {
	s.rows = s.rows[:0]
	s.pos = 0
	var lo, hi types.Row
	if s.Lo != nil {
		v, err := s.Lo.Eval(ctx.exprCtx(nil))
		if err != nil {
			return err
		}
		lo = types.Row{v}
	}
	if s.Hi != nil {
		v, err := s.Hi.Eval(ctx.exprCtx(nil))
		if err != nil {
			return err
		}
		hi = types.Row{v}
	}
	// Hi bound compares on the first key column only: extend with a
	// sentinel so composite keys under the same first column all qualify.
	var hiKey types.Row
	if hi != nil {
		hiKey = hi
	}
	s.Tree.AscendRange(lo, nil, func(key types.Row, rid storage.RowID) bool {
		if hiKey != nil && types.Compare(key[0], hiKey[0]) > 0 {
			return false
		}
		if row, ok := s.Heap.Get(ctx.Snap, rid); ok {
			s.rows = append(s.rows, row)
		}
		return true
	})
	return nil
}

// Next implements Operator.
func (s *IndexScan) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *IndexScan) Close() error { s.rows = nil; return nil }
