package exec

import (
	"sort"

	"streamrel/internal/expr"
	"streamrel/internal/types"
)

// Filter passes through rows for which Pred is true.
type Filter struct {
	Child Operator
	Pred  *expr.Scalar

	ctx   *Ctx
	buf   []types.Row // NextBatch output container, reused per chunk
	inBuf []types.Row // staging for non-Batcher children
}

// Open implements Operator.
func (f *Filter) Open(ctx *Ctx) error {
	f.ctx = ctx
	return f.Child.Open(ctx)
}

// Next implements Operator.
func (f *Filter) Next() (types.Row, error) {
	for {
		row, err := f.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		ok, err := evalPred(f.ctx, f.Pred, row)
		if err != nil {
			return nil, err
		}
		if ok {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project evaluates one output expression per column.
type Project struct {
	Child Operator
	Exprs []*expr.Scalar

	ctx   *Ctx
	buf   []types.Row // NextBatch output container, reused per chunk
	inBuf []types.Row // staging for non-Batcher children
}

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error {
	p.ctx = ctx
	return p.Child.Open(ctx)
}

// Next implements Operator.
func (p *Project) Next() (types.Row, error) {
	row, err := p.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	ec := p.ctx.exprCtx(row)
	for i, e := range p.Exprs {
		if out[i], err = e.Eval(ec); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Limit implements LIMIT/OFFSET.
type Limit struct {
	Child  Operator
	Count  int64 // -1 means no limit
	Offset int64

	skipped int64
	emitted int64
}

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx) error {
	l.skipped, l.emitted = 0, 0
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next() (types.Row, error) {
	for l.skipped < l.Offset {
		row, err := l.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		l.skipped++
	}
	if l.Count >= 0 && l.emitted >= l.Count {
		return nil, nil
	}
	row, err := l.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.emitted++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Child.Close() }

// SortKey is one ORDER BY key.
type SortKey struct {
	Expr *expr.Scalar
	Desc bool
	// NullsFirst/NullsLast force NULL placement; when neither is set,
	// NULLs follow the total order (first ascending, last descending).
	NullsFirst bool
	NullsLast  bool
}

// Sort materializes its input and emits it ordered by Keys. NULLs sort
// first on ascending keys (types.Compare's total order), last on
// descending.
type Sort struct {
	Child Operator
	Keys  []SortKey

	rows []types.Row
	pos  int
}

// Open implements Operator.
func (s *Sort) Open(ctx *Ctx) error {
	s.rows = nil
	s.pos = 0
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	defer s.Child.Close()
	type keyed struct {
		row  types.Row
		keys types.Row
	}
	var all []keyed
	for {
		row, err := s.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		ks := make(types.Row, len(s.Keys))
		ec := ctx.exprCtx(row)
		for i, k := range s.Keys {
			if ks[i], err = k.Expr.Eval(ec); err != nil {
				return err
			}
		}
		all = append(all, keyed{row, ks})
	}
	sort.SliceStable(all, func(i, j int) bool {
		for k := range s.Keys {
			key := s.Keys[k]
			a, b := all[i].keys[k], all[j].keys[k]
			an, bn := a.IsNull(), b.IsNull()
			if an || bn {
				if an && bn {
					continue
				}
				// Explicit placement overrides the total order.
				if key.NullsFirst {
					return an
				}
				if key.NullsLast {
					return bn
				}
			}
			c := types.Compare(a, b)
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	s.rows = make([]types.Row, len(all))
	for i, a := range all {
		s.rows[i] = a.row
	}
	return nil
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error { s.rows = nil; return nil }

// Distinct removes duplicate rows (SQL DISTINCT: NULLs compare equal).
type Distinct struct {
	Child Operator

	seen map[string]struct{}
}

// Open implements Operator.
func (d *Distinct) Open(ctx *Ctx) error {
	d.seen = make(map[string]struct{})
	return d.Child.Open(ctx)
}

// Next implements Operator.
func (d *Distinct) Next() (types.Row, error) {
	for {
		row, err := d.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		k := row.Key()
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		return row, nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error { d.seen = nil; return d.Child.Close() }

// SetOpKind mirrors sql.SetOpKind without importing it (exec stays
// front-end-agnostic).
type SetOpKind int

// Set operation kinds.
const (
	SetUnion SetOpKind = iota
	SetExcept
	SetIntersect
)

// SetOp implements UNION/EXCEPT/INTERSECT, with and without ALL, by
// hashing the right side.
type SetOp struct {
	Kind        SetOpKind
	All         bool
	Left, Right Operator

	rows []types.Row
	pos  int
}

// Open implements Operator: both sides are evaluated eagerly.
func (s *SetOp) Open(ctx *Ctx) error {
	s.rows = nil
	s.pos = 0
	left, err := Drain(ctx, s.Left)
	if err != nil {
		return err
	}
	right, err := Drain(ctx, s.Right)
	if err != nil {
		return err
	}
	counts := make(map[string]int, len(right))
	for _, r := range right {
		counts[r.Key()]++
	}
	switch s.Kind {
	case SetUnion:
		s.rows = append(left, right...)
		if !s.All {
			s.rows = dedup(s.rows)
		}
	case SetExcept:
		for _, r := range left {
			k := r.Key()
			if s.All {
				if counts[k] > 0 {
					counts[k]--
					continue
				}
				s.rows = append(s.rows, r)
			} else if counts[k] == 0 {
				s.rows = append(s.rows, r)
			}
		}
		if !s.All {
			s.rows = dedup(s.rows)
		}
	case SetIntersect:
		for _, r := range left {
			k := r.Key()
			if counts[k] > 0 {
				if s.All {
					counts[k]--
				}
				s.rows = append(s.rows, r)
			}
		}
		if !s.All {
			s.rows = dedup(s.rows)
		}
	}
	return nil
}

func dedup(rows []types.Row) []types.Row {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := r.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, r)
	}
	return out
}

// Next implements Operator.
func (s *SetOp) Next() (types.Row, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *SetOp) Close() error { s.rows = nil; return nil }
