package exec

import (
	"fmt"
	"testing"

	"streamrel/internal/expr"
	"streamrel/internal/types"
)

// rowOnly hides a child's Batcher implementation so tests can force the
// per-row fallback through the same operator tree.
type rowOnly struct{ Operator }

func makeRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = irow(int64(i), int64(i%7))
	}
	return rows
}

// filterProject builds Project(col1, col0)(Filter(col1 != 0)(child)).
func filterProject(child Operator) Operator {
	return &Project{
		Child: &Filter{
			Child: child,
			Pred:  predFn(func(r types.Row) bool { return r[1].Int() != 0 }),
		},
		Exprs: []*expr.Scalar{col(1), col(0)},
	}
}

// TestBatchedEquivalence drains the same Filter+Project tree through the
// batched path (Relation child implements Batcher) and the per-row path
// (child wrapped so Batcher is hidden) and requires identical output.
func TestBatchedEquivalence(t *testing.T) {
	in := makeRows(533)
	batched := run(t, filterProject(&Relation{Rows: in}))
	rowed := run(t, filterProject(rowOnly{&Relation{Rows: in}}))
	if len(batched) != len(rowed) {
		t.Fatalf("row counts differ: batched=%d per-row=%d", len(batched), len(rowed))
	}
	for i := range batched {
		if !types.RowsEqual(batched[i], rowed[i]) {
			t.Fatalf("row %d differs: batched=%v per-row=%v", i, batched[i], rowed[i])
		}
	}
	want := 533 - (533+6)/7 // rows with i%7 == 0 are filtered out
	if len(batched) != want {
		t.Fatalf("expected %d rows, got %d", want, len(batched))
	}
}

// TestBatchedAggEquivalence checks HashAgg over batched and per-row
// children, exercising the scratch-key clone-on-new-group path.
func TestBatchedAggEquivalence(t *testing.T) {
	in := makeRows(411)
	agg := func(child Operator) *HashAgg {
		return &HashAgg{Child: child, GroupBy: []*expr.Scalar{col(1)},
			Aggs: []expr.AggSpec{{Name: "count", Star: true}}, SortedOutput: true}
	}
	a := run(t, agg(&Relation{Rows: in}))
	b := run(t, agg(rowOnly{&Relation{Rows: in}}))
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("expected 7 groups, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if !types.RowsEqual(a[i], b[i]) {
			t.Fatalf("group %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBatchRetainSafe verifies Drain's result survives the producing
// operators being reused: batch containers are reused, row values must
// not be.
func TestBatchRetainSafe(t *testing.T) {
	p := filterProject(&Relation{Rows: makeRows(64)})
	first := run(t, p)
	snapshot := fmt.Sprint(first)
	// Drive a second execution through the same operator values (fresh
	// Open resets position); the first result must be unchanged.
	_ = run(t, p)
	if fmt.Sprint(first) != snapshot {
		t.Fatal("retained rows mutated by a later execution")
	}
}

// TestFilterBatchSkipsEmptyChunks covers the Filter.NextBatch loop that
// must keep pulling when an entire child chunk is filtered out.
func TestFilterBatchSkipsEmptyChunks(t *testing.T) {
	f := &Filter{
		Child: &Relation{Rows: makeRows(21)},
		Pred:  predFn(func(r types.Row) bool { return false }),
	}
	if err := f.Open(&Ctx{}); err != nil {
		t.Fatal(err)
	}
	batch, err := f.NextBatch()
	if err != nil || batch != nil {
		t.Fatalf("want end of stream, got %v, %v", batch, err)
	}
}
