// Package exec implements the iterator-style (Volcano) relational
// operators. Per the paper (§4), continuous-query plans "reuse the
// existing implementations of standard, well understood, iterator-style
// relational query operators (e.g., filters, joins, aggregates, sort)":
// the same operators here execute both snapshot queries over tables and
// each per-window evaluation of a continuous query.
package exec

import (
	"time"

	"streamrel/internal/expr"
	"streamrel/internal/txn"
	"streamrel/internal/types"
)

// Ctx carries per-execution state: the MVCC snapshot for table reads
// (window consistency hands CQs a fresh one per window close) and the
// window-close timestamp for cq_close(*).
type Ctx struct {
	Snap        txn.Snapshot
	WindowClose types.Datum
	Now         func() time.Time
}

// exprCtx builds the expression-evaluation context for a row.
func (c *Ctx) exprCtx(row types.Row) *expr.Ctx {
	return &expr.Ctx{Row: row, WindowClose: c.WindowClose, Now: c.Now}
}

// Operator is a pull-based iterator over rows. The contract: Open before
// Next; Next returns (nil, nil) at end of stream; Close releases state and
// is idempotent. Operators are single-use: build a fresh tree per
// execution.
type Operator interface {
	Open(ctx *Ctx) error
	Next() (types.Row, error)
	Close() error
}

// Drain runs an operator to completion and collects its output. It
// pulls whole chunks when the root implements Batcher; the collected
// rows are copied out of any operator-owned batch container, so the
// result is safe to retain.
func Drain(ctx *Ctx, op Operator) ([]types.Row, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out, buf []types.Row
	for {
		batch, err := nextBatch(op, &buf)
		if err != nil {
			return nil, err
		}
		if batch == nil {
			return out, nil
		}
		out = append(out, batch...)
	}
}

// evalPred evaluates a predicate under SQL semantics: NULL means the row
// does not qualify.
func evalPred(ctx *Ctx, pred *expr.Scalar, row types.Row) (bool, error) {
	v, err := pred.Eval(ctx.exprCtx(row))
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
