package exec

import (
	"testing"

	"streamrel/internal/expr"
	"streamrel/internal/storage"
	"streamrel/internal/txn"
	"streamrel/internal/types"
)

func irow(vs ...int64) types.Row {
	r := make(types.Row, len(vs))
	for i, v := range vs {
		r[i] = types.NewInt(v)
	}
	return r
}

// col returns a scalar projecting column i.
func col(i int) *expr.Scalar {
	return &expr.Scalar{
		Type: types.TypeInt,
		Eval: func(ctx *expr.Ctx) (types.Datum, error) { return ctx.Row[i], nil },
	}
}

// constScalar returns a scalar producing d.
func constScalar(d types.Datum) *expr.Scalar {
	return &expr.Scalar{Type: d.Type(), Eval: func(*expr.Ctx) (types.Datum, error) { return d, nil }}
}

// predCol returns a predicate fn(row) built from a Go closure.
func predFn(f func(types.Row) bool) *expr.Scalar {
	return &expr.Scalar{Type: types.TypeBool, Eval: func(ctx *expr.Ctx) (types.Datum, error) {
		return types.NewBool(f(ctx.Row)), nil
	}}
}

func run(t *testing.T, op Operator) []types.Row {
	t.Helper()
	rows, err := Drain(&Ctx{}, op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestValuesAndRelation(t *testing.T) {
	rows := run(t, &Values{Rows: []types.Row{irow(1), irow(2)}})
	if len(rows) != 2 {
		t.Fatal("values")
	}
	rows = run(t, &Relation{Rows: []types.Row{irow(3)}})
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Fatal("relation")
	}
}

func TestSeqScanVisibility(t *testing.T) {
	mgr := txn.NewManager()
	h := storage.NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}})
	tx := mgr.Begin()
	h.Insert(tx.ID, irow(1))
	tx.Commit()
	tx2 := mgr.Begin()
	h.Insert(tx2.ID, irow(2)) // uncommitted

	rows, err := Drain(&Ctx{Snap: mgr.SnapshotNow()}, &SeqScan{Heap: h})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 1 {
		t.Fatalf("scan saw %v", rows)
	}
	tx2.Abort()
}

func TestFilterProject(t *testing.T) {
	src := &Values{Rows: []types.Row{irow(1), irow(2), irow(3), irow(4)}}
	f := &Filter{Child: src, Pred: predFn(func(r types.Row) bool { return r[0].Int()%2 == 0 })}
	p := &Project{Child: f, Exprs: []*expr.Scalar{
		{Eval: func(ctx *expr.Ctx) (types.Datum, error) {
			return types.NewInt(ctx.Row[0].Int() * 10), nil
		}},
	}}
	rows := run(t, p)
	if len(rows) != 2 || rows[0][0].Int() != 20 || rows[1][0].Int() != 40 {
		t.Fatalf("got %v", rows)
	}
}

func TestLimitOffset(t *testing.T) {
	mk := func() Operator {
		return &Values{Rows: []types.Row{irow(1), irow(2), irow(3), irow(4), irow(5)}}
	}
	rows := run(t, &Limit{Child: mk(), Count: 2, Offset: 1})
	if len(rows) != 2 || rows[0][0].Int() != 2 {
		t.Fatalf("limit 2 offset 1: %v", rows)
	}
	rows = run(t, &Limit{Child: mk(), Count: -1, Offset: 3})
	if len(rows) != 2 {
		t.Fatalf("offset only: %v", rows)
	}
	rows = run(t, &Limit{Child: mk(), Count: 0, Offset: 0})
	if len(rows) != 0 {
		t.Fatalf("limit 0: %v", rows)
	}
}

func TestSort(t *testing.T) {
	src := &Values{Rows: []types.Row{irow(3, 1), irow(1, 2), irow(2, 3), irow(1, 1)}}
	s := &Sort{Child: src, Keys: []SortKey{{Expr: col(0)}, {Expr: col(1), Desc: true}}}
	rows := run(t, s)
	want := [][2]int64{{1, 2}, {1, 1}, {2, 3}, {3, 1}}
	for i, w := range want {
		if rows[i][0].Int() != w[0] || rows[i][1].Int() != w[1] {
			t.Fatalf("row %d: %v, want %v", i, rows[i], w)
		}
	}
}

func TestSortNullsFirst(t *testing.T) {
	src := &Values{Rows: []types.Row{{types.NewInt(1)}, {types.Null}, {types.NewInt(0)}}}
	rows := run(t, &Sort{Child: src, Keys: []SortKey{{Expr: col(0)}}})
	if !rows[0][0].IsNull() {
		t.Fatal("NULL should sort first ascending")
	}
	src2 := &Values{Rows: []types.Row{{types.NewInt(1)}, {types.Null}, {types.NewInt(0)}}}
	rows = run(t, &Sort{Child: src2, Keys: []SortKey{{Expr: col(0), Desc: true}}})
	if !rows[2][0].IsNull() {
		t.Fatal("NULL should sort last descending")
	}
}

func TestDistinct(t *testing.T) {
	src := &Values{Rows: []types.Row{irow(1), irow(2), irow(1), {types.Null}, {types.Null}}}
	rows := run(t, &Distinct{Child: src})
	if len(rows) != 3 {
		t.Fatalf("distinct: %v", rows)
	}
}

func TestHashJoinInner(t *testing.T) {
	left := &Values{Rows: []types.Row{irow(1, 10), irow(2, 20), irow(3, 30)}}
	right := &Values{Rows: []types.Row{irow(2, 200), irow(3, 300), irow(3, 301), irow(4, 400)}}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []*expr.Scalar{col(0)}, RightKeys: []*expr.Scalar{col(0)},
		Type: JoinInner, LeftWidth: 2, RightWidth: 2,
	}
	rows := run(t, j)
	if len(rows) != 3 {
		t.Fatalf("inner join rows: %v", rows)
	}
	for _, r := range rows {
		if r[0].Int() != r[2].Int() {
			t.Fatalf("join key mismatch: %v", r)
		}
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	left := &Values{Rows: []types.Row{irow(1), irow(2)}}
	right := &Values{Rows: []types.Row{irow(2, 20)}}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []*expr.Scalar{col(0)}, RightKeys: []*expr.Scalar{col(0)},
		Type: JoinLeft, LeftWidth: 1, RightWidth: 2,
	}
	rows := run(t, j)
	if len(rows) != 2 {
		t.Fatalf("left join rows: %v", rows)
	}
	var sawPadded bool
	for _, r := range rows {
		if r[0].Int() == 1 {
			if !r[1].IsNull() || !r[2].IsNull() {
				t.Fatalf("unmatched row not padded: %v", r)
			}
			sawPadded = true
		}
	}
	if !sawPadded {
		t.Fatal("missing padded row")
	}
}

func TestHashJoinFullOuter(t *testing.T) {
	left := &Values{Rows: []types.Row{irow(1), irow(2)}}
	right := &Values{Rows: []types.Row{irow(2), irow(3)}}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []*expr.Scalar{col(0)}, RightKeys: []*expr.Scalar{col(0)},
		Type: JoinFull, LeftWidth: 1, RightWidth: 1,
	}
	rows := run(t, j)
	if len(rows) != 3 {
		t.Fatalf("full join rows: %d %v", len(rows), rows)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := &Values{Rows: []types.Row{{types.Null}}}
	right := &Values{Rows: []types.Row{{types.Null}}}
	j := &HashJoin{
		Left: left, Right: right,
		LeftKeys: []*expr.Scalar{col(0)}, RightKeys: []*expr.Scalar{col(0)},
		Type: JoinInner, LeftWidth: 1, RightWidth: 1,
	}
	if rows := run(t, j); len(rows) != 0 {
		t.Fatalf("NULL keys joined: %v", rows)
	}
}

func TestNestedLoopJoin(t *testing.T) {
	left := &Values{Rows: []types.Row{irow(1), irow(5)}}
	right := &Values{Rows: []types.Row{irow(2), irow(6)}}
	// Non-equi: l.a < r.a
	j := &NestedLoopJoin{
		Left: left, Right: right, Type: JoinInner, RightWidth: 1,
		Pred: predFn(func(r types.Row) bool { return r[0].Int() < r[1].Int() }),
	}
	rows := run(t, j)
	if len(rows) != 3 {
		t.Fatalf("nl join: %v", rows)
	}
	// Cross join.
	j2 := &NestedLoopJoin{
		Left:  &Values{Rows: []types.Row{irow(1), irow(2)}},
		Right: &Values{Rows: []types.Row{irow(3), irow(4)}},
		Type:  JoinCross, RightWidth: 1,
	}
	if rows := run(t, j2); len(rows) != 4 {
		t.Fatalf("cross join: %v", rows)
	}
}

func TestHashAggGrouped(t *testing.T) {
	src := &Values{Rows: []types.Row{irow(1, 10), irow(1, 20), irow(2, 5)}}
	agg := &HashAgg{
		Child:   src,
		GroupBy: []*expr.Scalar{col(0)},
		Aggs: []expr.AggSpec{
			{Name: "count", Star: true},
			{Name: "sum", Arg: col(1)},
		},
		SortedOutput: true,
	}
	rows := run(t, agg)
	if len(rows) != 2 {
		t.Fatalf("groups: %v", rows)
	}
	byKey := map[int64][2]int64{}
	for _, r := range rows {
		byKey[r[0].Int()] = [2]int64{r[1].Int(), r[2].Int()}
	}
	if byKey[1] != [2]int64{2, 30} || byKey[2] != [2]int64{1, 5} {
		t.Fatalf("agg results: %v", byKey)
	}
}

func TestHashAggScalarOnEmptyInput(t *testing.T) {
	agg := &HashAgg{
		Child: &Values{},
		Aggs: []expr.AggSpec{
			{Name: "count", Star: true},
			{Name: "sum", Arg: col(0)},
		},
	}
	rows := run(t, agg)
	if len(rows) != 1 {
		t.Fatalf("scalar agg on empty input must return one row: %v", rows)
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("defaults: %v", rows[0])
	}
	// But with GROUP BY, empty input yields no rows.
	agg2 := &HashAgg{Child: &Values{}, GroupBy: []*expr.Scalar{col(0)},
		Aggs: []expr.AggSpec{{Name: "count", Star: true}}}
	if rows := run(t, agg2); len(rows) != 0 {
		t.Fatalf("grouped agg on empty input: %v", rows)
	}
}

func TestSetOps(t *testing.T) {
	mk := func(vals ...int64) Operator {
		rows := make([]types.Row, len(vals))
		for i, v := range vals {
			rows[i] = irow(v)
		}
		return &Values{Rows: rows}
	}
	rows := run(t, &SetOp{Kind: SetUnion, Left: mk(1, 2, 2), Right: mk(2, 3)})
	if len(rows) != 3 {
		t.Fatalf("union: %v", rows)
	}
	rows = run(t, &SetOp{Kind: SetUnion, All: true, Left: mk(1, 2, 2), Right: mk(2, 3)})
	if len(rows) != 5 {
		t.Fatalf("union all: %v", rows)
	}
	rows = run(t, &SetOp{Kind: SetExcept, Left: mk(1, 2, 2, 3), Right: mk(2)})
	if len(rows) != 2 {
		t.Fatalf("except: %v", rows)
	}
	rows = run(t, &SetOp{Kind: SetExcept, All: true, Left: mk(1, 2, 2, 3), Right: mk(2)})
	if len(rows) != 3 {
		t.Fatalf("except all: %v", rows)
	}
	rows = run(t, &SetOp{Kind: SetIntersect, Left: mk(1, 2, 2, 3), Right: mk(2, 3, 4)})
	if len(rows) != 2 {
		t.Fatalf("intersect: %v", rows)
	}
}

func TestIndexScan(t *testing.T) {
	mgr := txn.NewManager()
	h := storage.NewHeap("t", types.Schema{{Name: "a", Type: types.TypeInt}, {Name: "b", Type: types.TypeInt}})
	tree := storage.NewBTree()
	tx := mgr.Begin()
	for i := int64(0); i < 100; i++ {
		rid, _ := h.Insert(tx.ID, irow(i, i*10))
		tree.Insert(types.Row{types.NewInt(i)}, rid)
	}
	tx.Commit()
	ix := &IndexScan{
		Heap: h,
		Tree: tree,
		Lo:   constScalar(types.NewInt(10)),
		Hi:   constScalar(types.NewInt(15)),
	}
	rows, err := Drain(&Ctx{Snap: mgr.SnapshotNow()}, ix)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 || rows[0][0].Int() != 10 || rows[5][0].Int() != 15 {
		t.Fatalf("index range: %v", rows)
	}
}
