package workload

import (
	"testing"
	"time"

	"streamrel/internal/types"
)

func TestClickstreamShape(t *testing.T) {
	g := NewClickstream(ClickConfig{Seed: 1, URLs: 50, EventsPerSec: 1000})
	rows := g.Take(5000)
	counts := map[string]int{}
	var last int64 = -1
	for _, r := range rows {
		if len(r) != 3 {
			t.Fatal("arity")
		}
		ts := r[1].TimestampMicros()
		if ts < last {
			t.Fatal("timestamps must be non-decreasing")
		}
		last = ts
		counts[r[0].Str()]++
	}
	// Zipf skew: the hottest URL should dominate the median URL.
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(total) < 0.10 {
		t.Fatalf("distribution not skewed: max share %.3f", float64(max)/float64(total))
	}
	// Rate: 5000 events at 1000/s spans roughly 5 seconds of stream time.
	span := rows[len(rows)-1][1].TimestampMicros() - rows[0][1].TimestampMicros()
	if span < 3_000_000 || span > 8_000_000 {
		t.Fatalf("span = %dus, expected ~5s", span)
	}
}

func TestClickstreamDeterminism(t *testing.T) {
	a := NewClickstream(ClickConfig{Seed: 7}).Take(100)
	b := NewClickstream(ClickConfig{Seed: 7}).Take(100)
	for i := range a {
		if !types.RowsEqual(a[i], b[i]) {
			t.Fatalf("row %d differs under same seed", i)
		}
	}
	c := NewClickstream(ClickConfig{Seed: 8}).Take(100)
	same := 0
	for i := range a {
		if types.RowsEqual(a[i], c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSecurityEvents(t *testing.T) {
	g := NewSecurityEvents(SecurityConfig{Seed: 3, Start: time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)})
	rows := g.Take(2000)
	deny := 0
	var last int64 = -1
	for _, r := range rows {
		if len(r) != 5 {
			t.Fatal("arity")
		}
		ts := r[0].TimestampMicros()
		if ts < last {
			t.Fatal("order")
		}
		last = ts
		switch r[3].Str() {
		case "deny":
			deny++
		case "allow":
		default:
			t.Fatalf("bad action %q", r[3].Str())
		}
	}
	if deny == 0 || deny == len(rows) {
		t.Fatalf("deny count %d of %d is degenerate", deny, len(rows))
	}
	if g.Now() <= rows[0][0].TimestampMicros() {
		t.Fatal("Now should track stream time")
	}
}

func TestImpressions(t *testing.T) {
	g := NewImpressions(ImpressionConfig{Seed: 5, Campaigns: 10})
	rows := g.Take(1000)
	for _, r := range rows {
		if c := r[1].Int(); c < 0 || c >= 10 {
			t.Fatalf("campaign out of range: %d", c)
		}
		if r[3].Int() < 100 {
			t.Fatal("cost floor")
		}
	}
	if NewImpressions(ImpressionConfig{Seed: 5, Campaigns: 10}).Take(1)[0].String() != rows[0].String() {
		t.Fatal("determinism")
	}
}

func TestSchemasMatchRows(t *testing.T) {
	click := NewClickstream(ClickConfig{Seed: 1})
	if len(click.Schema()) != len(click.Next()) {
		t.Fatal("clickstream schema")
	}
	sec := NewSecurityEvents(SecurityConfig{Seed: 1})
	if len(sec.Schema()) != len(sec.Next()) {
		t.Fatal("security schema")
	}
	imp := NewImpressions(ImpressionConfig{Seed: 1})
	if len(imp.Schema()) != len(imp.Next()) {
		t.Fatal("impressions schema")
	}
}
