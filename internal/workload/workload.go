// Package workload generates the synthetic event feeds the experiments
// run on. The paper's motivating applications are network-centric event
// streams — web clickstreams (§1, the url_stream running example),
// network-security logs (§4 case study), and ad-network impressions (§1.1)
// — all additive, time-ordered, and skewed. Generators are deterministic
// under a seed so experiments reproduce exactly.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"streamrel/internal/types"
)

// micros per second.
const second = int64(1_000_000)

// Clickstream produces url_stream events: (url, atime, client_ip).
// URLs follow a Zipf distribution (a few hot pages dominate), clients are
// uniform, and inter-arrival times are exponential around the configured
// rate — the additive, time-ordered shape the paper exploits.
type Clickstream struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	urls    []string
	clients int
	ts      int64 // microseconds
	gapMean float64
}

// ClickConfig configures a Clickstream.
type ClickConfig struct {
	Seed         int64
	URLs         int       // distinct pages (default 100)
	Clients      int       // distinct client IPs (default 1000)
	Start        time.Time // first event time
	EventsPerSec float64   // mean arrival rate (default 100)
	Skew         float64   // Zipf s parameter (default 1.2)
}

// NewClickstream builds a generator.
func NewClickstream(cfg ClickConfig) *Clickstream {
	if cfg.URLs <= 0 {
		cfg.URLs = 100
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1000
	}
	if cfg.EventsPerSec <= 0 {
		cfg.EventsPerSec = 100
	}
	if cfg.Skew <= 1 {
		cfg.Skew = 1.2
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	urls := make([]string, cfg.URLs)
	for i := range urls {
		urls[i] = fmt.Sprintf("/page/%04d", i)
	}
	return &Clickstream{
		rng:     rng,
		zipf:    rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.URLs-1)),
		urls:    urls,
		clients: cfg.Clients,
		ts:      cfg.Start.UnixMicro(),
		gapMean: float64(second) / cfg.EventsPerSec,
	}
}

// Schema returns the url_stream schema (CQTIME column is index 1).
func (c *Clickstream) Schema() types.Schema {
	return types.Schema{
		{Name: "url", Type: types.TypeString},
		{Name: "atime", Type: types.TypeTimestamp},
		{Name: "client_ip", Type: types.TypeString},
	}
}

// Next returns the next event row with a non-decreasing timestamp.
func (c *Clickstream) Next() types.Row {
	c.ts += int64(c.rng.ExpFloat64() * c.gapMean)
	return types.Row{
		types.NewString(c.urls[c.zipf.Uint64()]),
		types.NewTimestampMicros(c.ts),
		types.NewString(fmt.Sprintf("10.%d.%d.%d",
			c.rng.Intn(4), c.rng.Intn(256), c.rng.Intn(c.clients%256+1))),
	}
}

// Take returns the next n events.
func (c *Clickstream) Take(n int) []types.Row {
	out := make([]types.Row, n)
	for i := range out {
		out[i] = c.Next()
	}
	return out
}

// Now returns the generator's current stream time in microseconds.
func (c *Clickstream) Now() int64 { return c.ts }

// SecurityEvent mirrors the paper's §4 network-security reporting case
// study: firewall log records.
type SecurityEvents struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	ts   int64
	gap  float64
}

// SecurityConfig configures a SecurityEvents generator.
type SecurityConfig struct {
	Seed         int64
	Start        time.Time
	EventsPerSec float64
}

// NewSecurityEvents builds a generator of firewall events.
func NewSecurityEvents(cfg SecurityConfig) *SecurityEvents {
	if cfg.EventsPerSec <= 0 {
		cfg.EventsPerSec = 500
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &SecurityEvents{
		rng:  rng,
		zipf: rand.NewZipf(rng, 1.3, 1, 4095),
		ts:   cfg.Start.UnixMicro(),
		gap:  float64(second) / cfg.EventsPerSec,
	}
}

// Schema returns the security event schema (CQTIME column is index 0):
// (etime, src_ip, dst_port, action, bytes).
func (s *SecurityEvents) Schema() types.Schema {
	return types.Schema{
		{Name: "etime", Type: types.TypeTimestamp},
		{Name: "src_ip", Type: types.TypeString},
		{Name: "dst_port", Type: types.TypeInt},
		{Name: "action", Type: types.TypeString},
		{Name: "bytes", Type: types.TypeInt},
	}
}

// Next returns the next firewall event.
func (s *SecurityEvents) Next() types.Row {
	s.ts += int64(s.rng.ExpFloat64() * s.gap)
	src := s.zipf.Uint64()
	action := "allow"
	// Hot sources are disproportionately scanners: deny more often.
	if s.rng.Float64() < 0.05+0.3/float64(src+1) {
		action = "deny"
	}
	ports := []int64{22, 23, 80, 443, 445, 3389, 8080}
	return types.Row{
		types.NewTimestampMicros(s.ts),
		types.NewString(fmt.Sprintf("192.168.%d.%d", src/256, src%256)),
		types.NewInt(ports[s.rng.Intn(len(ports))]),
		types.NewString(action),
		types.NewInt(int64(s.rng.Intn(64 * 1024))),
	}
}

// Take returns the next n events.
func (s *SecurityEvents) Take(n int) []types.Row {
	out := make([]types.Row, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Now returns the generator's current stream time in microseconds.
func (s *SecurityEvents) Now() int64 { return s.ts }

// Impressions models an ad network's impression feed:
// (itime, campaign, publisher, cost_micros).
type Impressions struct {
	rng       *rand.Rand
	zipf      *rand.Zipf
	campaigns int
	ts        int64
	gap       float64
}

// ImpressionConfig configures an Impressions generator.
type ImpressionConfig struct {
	Seed         int64
	Campaigns    int
	Publishers   int
	Start        time.Time
	EventsPerSec float64
}

// NewImpressions builds an ad-impression generator.
func NewImpressions(cfg ImpressionConfig) *Impressions {
	if cfg.Campaigns <= 0 {
		cfg.Campaigns = 50
	}
	if cfg.Publishers <= 0 {
		cfg.Publishers = 200
	}
	if cfg.EventsPerSec <= 0 {
		cfg.EventsPerSec = 1000
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Impressions{
		rng:       rng,
		zipf:      rand.NewZipf(rng, 1.1, 1, uint64(cfg.Publishers-1)),
		campaigns: cfg.Campaigns,
		ts:        cfg.Start.UnixMicro(),
		gap:       float64(second) / cfg.EventsPerSec,
	}
}

// Schema returns the impression schema (CQTIME column is index 0).
func (im *Impressions) Schema() types.Schema {
	return types.Schema{
		{Name: "itime", Type: types.TypeTimestamp},
		{Name: "campaign", Type: types.TypeInt},
		{Name: "publisher", Type: types.TypeInt},
		{Name: "cost", Type: types.TypeInt}, // micro-dollars
	}
}

// Next returns the next impression.
func (im *Impressions) Next() types.Row {
	im.ts += int64(im.rng.ExpFloat64() * im.gap)
	return types.Row{
		types.NewTimestampMicros(im.ts),
		types.NewInt(int64(im.rng.Intn(im.campaigns))),
		types.NewInt(int64(im.zipf.Uint64())),
		types.NewInt(int64(100 + im.rng.Intn(5000))),
	}
}

// Take returns the next n impressions.
func (im *Impressions) Take(n int) []types.Row {
	out := make([]types.Row, n)
	for i := range out {
		out[i] = im.Next()
	}
	return out
}

// Now returns the generator's current stream time in microseconds.
func (im *Impressions) Now() int64 { return im.ts }
