package catalog

import (
	"errors"
	"testing"

	"streamrel/internal/sql"
	"streamrel/internal/types"
)

func intSchema(names ...string) types.Schema {
	s := make(types.Schema, len(names))
	for i, n := range names {
		s[i] = types.Column{Name: n, Type: types.TypeInt}
	}
	return s
}

func streamSchema() types.Schema {
	return types.Schema{
		{Name: "v", Type: types.TypeInt},
		{Name: "at", Type: types.TypeTimestamp},
	}
}

func TestSharedNamespace(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("x", intSchema("a")); err != nil {
		t.Fatal(err)
	}
	// Every other kind collides with the table name.
	if _, err := c.CreateStream("x", streamSchema(), 1, false); err == nil {
		t.Fatal("stream should collide with table")
	}
	if err := c.CreateView(&View{Name: "x"}); err == nil {
		t.Fatal("view should collide with table")
	}
	if err := c.CreateDerivedStream(&DerivedStream{Name: "x"}); err == nil {
		t.Fatal("derived should collide with table")
	}
	var exists ErrExists
	_, err := c.CreateTable("x", intSchema("a"))
	if !errors.As(err, &exists) || exists.Name != "x" {
		t.Fatalf("ErrExists not surfaced: %v", err)
	}
}

func TestStreamValidation(t *testing.T) {
	c := New()
	if _, err := c.CreateStream("s", streamSchema(), 5, false); err == nil {
		t.Fatal("out-of-range cqtime column")
	}
	if _, err := c.CreateStream("s", intSchema("a", "b"), 0, false); err == nil {
		t.Fatal("non-timestamp cqtime column")
	}
	s, err := c.CreateStream("s", streamSchema(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !s.SystemTime || s.CQTimeCol != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestChannelDependencies(t *testing.T) {
	c := New()
	c.CreateTable("tgt", intSchema("a"))
	c.CreateDerivedStream(&DerivedStream{Name: "d", CloseCol: -1})
	if err := c.CreateChannel(&Channel{Name: "ch", From: "nope", Into: "tgt"}); err == nil {
		t.Fatal("channel from missing derived")
	}
	if err := c.CreateChannel(&Channel{Name: "ch", From: "d", Into: "nope"}); err == nil {
		t.Fatal("channel into missing table")
	}
	if err := c.CreateChannel(&Channel{Name: "ch", From: "d", Into: "tgt"}); err != nil {
		t.Fatal(err)
	}
	tbl, _ := c.Table("tgt")
	if !tbl.Active {
		t.Fatal("channel target should be Active")
	}
	// Dependency protection.
	if err := c.Drop(sql.ObjTable, "tgt"); err == nil {
		t.Fatal("dropping channel target should fail")
	}
	if err := c.Drop(sql.ObjStream, "d"); err == nil {
		t.Fatal("dropping channel source should fail")
	}
	if err := c.Drop(sql.ObjChannel, "ch"); err != nil {
		t.Fatal(err)
	}
	if tbl.Active {
		t.Fatal("table should stop being Active when its only channel drops")
	}
	if err := c.Drop(sql.ObjStream, "d"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop(sql.ObjTable, "tgt"); err != nil {
		t.Fatal(err)
	}
}

func TestIndexLifecycle(t *testing.T) {
	c := New()
	c.CreateTable("t", intSchema("a", "b"))
	if _, err := c.CreateIndex("ix", "t", []string{"nope"}); err == nil {
		t.Fatal("index on missing column")
	}
	if _, err := c.CreateIndex("ix", "missing", []string{"a"}); err == nil {
		t.Fatal("index on missing table")
	}
	ix, err := c.CreateIndex("ix", "t", []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Columns) != 2 || ix.Columns[0] != 1 || ix.Columns[1] != 0 {
		t.Fatalf("columns: %v", ix.Columns)
	}
	key := ix.KeyOf(types.Row{types.NewInt(10), types.NewInt(20)})
	if key[0].Int() != 20 || key[1].Int() != 10 {
		t.Fatalf("KeyOf: %v", key)
	}
	if _, err := c.CreateIndex("ix", "t", []string{"a"}); err == nil {
		t.Fatal("duplicate index name")
	}
	tbl, _ := c.Table("t")
	if len(tbl.Indexes) != 1 {
		t.Fatal("table should list its index")
	}
	if err := c.Drop(sql.ObjIndex, "ix"); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Indexes) != 0 {
		t.Fatal("index not detached from table")
	}
	// Dropping a table removes its indexes from the global map.
	c.CreateIndex("ix2", "t", []string{"a"})
	c.Drop(sql.ObjTable, "t")
	var nf ErrNotFound
	if err := c.Drop(sql.ObjIndex, "ix2"); !errors.As(err, &nf) {
		t.Fatalf("index should be gone with its table: %v", err)
	}
}

func TestNamesAndListings(t *testing.T) {
	c := New()
	c.CreateTable("t2", intSchema("a"))
	c.CreateTable("t1", intSchema("a"))
	c.CreateStream("s1", streamSchema(), 1, false)
	c.CreateDerivedStream(&DerivedStream{Name: "d1"})
	c.CreateView(&View{Name: "v1"})
	c.CreateChannel(&Channel{Name: "c1", From: "d1", Into: "t1"})

	check := func(what string, want ...string) {
		t.Helper()
		got := c.Names(what)
		if len(got) != len(want) {
			t.Fatalf("%s: %v", what, got)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: %v (want %v)", what, got, want)
			}
		}
	}
	check("tables", "t1", "t2")
	check("streams", "d1", "s1")
	check("views", "v1")
	check("channels", "c1")
	if len(c.Tables()) != 2 || c.Tables()[0].Name != "t1" {
		t.Fatal("Tables() sorted listing")
	}
	if len(c.Channels()) != 1 || len(c.DerivedStreams()) != 1 {
		t.Fatal("listings")
	}
	var nf ErrNotFound
	if err := c.Drop(sql.ObjView, "nope"); !errors.As(err, &nf) {
		t.Fatal("ErrNotFound")
	}
}

func TestLookups(t *testing.T) {
	c := New()
	c.CreateTable("t", intSchema("a"))
	if _, ok := c.Table("t"); !ok {
		t.Fatal("table lookup")
	}
	if _, ok := c.Table("nope"); ok {
		t.Fatal("phantom table")
	}
	if _, ok := c.Stream("t"); ok {
		t.Fatal("table is not a stream")
	}
	if _, ok := c.View("t"); ok {
		t.Fatal("table is not a view")
	}
	if _, ok := c.Channel("t"); ok {
		t.Fatal("table is not a channel")
	}
	if _, ok := c.Derived("t"); ok {
		t.Fatal("table is not a derived stream")
	}
}
