// Package catalog holds the metadata for every object kind in the system:
// tables, base streams, derived streams, views, channels and indexes.
// All object kinds share one relation namespace, mirroring the paper's
// design where streams are first-class schema objects alongside tables.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"streamrel/internal/sql"
	"streamrel/internal/storage"
	"streamrel/internal/types"
)

// Table is a stored relation. Active reports whether a channel maintains
// it continuously (an Active Table, paper §3.3).
type Table struct {
	Name    string
	Schema  types.Schema
	Heap    *storage.Heap
	Indexes []*Index
	Active  bool
}

// Index is a secondary B-tree index on a table.
type Index struct {
	Name    string
	Table   string
	Columns []int // positions in the table schema
	Tree    *storage.BTree
}

// KeyOf extracts the index key from a table row.
func (ix *Index) KeyOf(row types.Row) types.Row {
	key := make(types.Row, len(ix.Columns))
	for i, c := range ix.Columns {
		key[i] = row[c]
	}
	return key
}

// Stream is a base stream: an ordered, unbounded relation with a
// designated CQTIME column (paper §3.1). SystemTime streams have their
// CQTIME column stamped by the engine at arrival ("CQTIME SYSTEM").
type Stream struct {
	Name       string
	Schema     types.Schema
	CQTimeCol  int
	SystemTime bool
	// PartitionCol is the schema position of the declared PARTITION BY
	// column (-1 when the stream is unpartitioned). Single-node engines
	// only record it; the shard router hashes it to place rows.
	PartitionCol int
}

// DerivedStream is a CREATE STREAM … AS object: an always-on continuous
// query whose results form a new stream (paper §3.2).
type DerivedStream struct {
	Name   string
	Schema types.Schema
	Query  *sql.Select
	SQL    string // original DDL text, for WAL replay
	// CloseCol is the output column holding cq_close(*), or -1. Recovery
	// uses it to resume from the last archived window (paper §4).
	CloseCol int
}

// View is a stored query definition. Views whose query references a
// stream are Streaming Views, instantiated per use (paper §3.2).
type View struct {
	Name  string
	Query *sql.Select
	SQL   string
}

// Channel connects a derived stream to a table, making the table Active
// (paper §3.3).
type Channel struct {
	Name string
	From string // derived stream
	Into string // table
	Mode sql.ChannelMode
	SQL  string
}

// Catalog is the in-memory metadata store. It is rebuilt from the WAL's
// DDL records at recovery.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	streams  map[string]*Stream
	derived  map[string]*DerivedStream
	views    map[string]*View
	channels map[string]*Channel
	indexes  map[string]*Index
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		streams:  make(map[string]*Stream),
		derived:  make(map[string]*DerivedStream),
		views:    make(map[string]*View),
		channels: make(map[string]*Channel),
		indexes:  make(map[string]*Index),
	}
}

// relationExists reports whether name is taken in the shared namespace.
// Callers hold c.mu.
func (c *Catalog) relationExists(name string) bool {
	if _, ok := c.tables[name]; ok {
		return true
	}
	if _, ok := c.streams[name]; ok {
		return true
	}
	if _, ok := c.derived[name]; ok {
		return true
	}
	if _, ok := c.views[name]; ok {
		return true
	}
	return false
}

// ErrExists wraps duplicate-name errors so IF NOT EXISTS can detect them.
type ErrExists struct{ Name string }

func (e ErrExists) Error() string { return fmt.Sprintf("catalog: %q already exists", e.Name) }

// ErrNotFound wraps missing-name errors so IF EXISTS can detect them.
type ErrNotFound struct{ Kind, Name string }

func (e ErrNotFound) Error() string {
	return fmt.Sprintf("catalog: %s %q does not exist", e.Kind, e.Name)
}

// CreateTable registers a new table with a fresh heap.
func (c *Catalog) CreateTable(name string, schema types.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.relationExists(name) {
		return nil, ErrExists{name}
	}
	t := &Table{Name: name, Schema: schema, Heap: storage.NewHeap(name, schema)}
	c.tables[name] = t
	return t, nil
}

// CreateStream registers an unpartitioned base stream.
func (c *Catalog) CreateStream(name string, schema types.Schema, cqtimeCol int, systemTime bool) (*Stream, error) {
	return c.CreateStreamPartitioned(name, schema, cqtimeCol, systemTime, -1)
}

// CreateStreamPartitioned registers a base stream with an optional
// PARTITION BY column (partitionCol = -1 for none).
func (c *Catalog) CreateStreamPartitioned(name string, schema types.Schema, cqtimeCol int, systemTime bool, partitionCol int) (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.relationExists(name) {
		return nil, ErrExists{name}
	}
	if cqtimeCol < 0 || cqtimeCol >= len(schema) {
		return nil, fmt.Errorf("catalog: stream %q: invalid CQTIME column", name)
	}
	if schema[cqtimeCol].Type != types.TypeTimestamp {
		return nil, fmt.Errorf("catalog: stream %q: CQTIME column must be TIMESTAMP", name)
	}
	if partitionCol >= len(schema) || (partitionCol >= 0 && partitionCol == cqtimeCol) {
		return nil, fmt.Errorf("catalog: stream %q: invalid PARTITION BY column", name)
	}
	if partitionCol < 0 {
		partitionCol = -1
	}
	s := &Stream{Name: name, Schema: schema, CQTimeCol: cqtimeCol, SystemTime: systemTime, PartitionCol: partitionCol}
	c.streams[name] = s
	return s, nil
}

// CreateDerivedStream registers a derived stream. The schema and CloseCol
// are computed by the planner before registration.
func (c *Catalog) CreateDerivedStream(d *DerivedStream) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.relationExists(d.Name) {
		return ErrExists{d.Name}
	}
	c.derived[d.Name] = d
	return nil
}

// CreateView registers a view.
func (c *Catalog) CreateView(v *View) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.relationExists(v.Name) {
		return ErrExists{v.Name}
	}
	c.views[v.Name] = v
	return nil
}

// CreateChannel registers a channel and marks the target table Active.
func (c *Catalog) CreateChannel(ch *Channel) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.channels[ch.Name]; ok {
		return ErrExists{ch.Name}
	}
	_, isDerived := c.derived[ch.From]
	_, isBase := c.streams[ch.From]
	if !isDerived && !isBase {
		return ErrNotFound{"stream", ch.From}
	}
	t, ok := c.tables[ch.Into]
	if !ok {
		return ErrNotFound{"table", ch.Into}
	}
	c.channels[ch.Name] = ch
	t.Active = true
	return nil
}

// CreateIndex registers a B-tree index; the engine backfills it.
func (c *Catalog) CreateIndex(name, table string, cols []string) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.indexes[name]; ok {
		return nil, ErrExists{name}
	}
	t, ok := c.tables[table]
	if !ok {
		return nil, ErrNotFound{"table", table}
	}
	positions := make([]int, len(cols))
	for i, col := range cols {
		p := t.Schema.IndexOf(col)
		if p < 0 {
			return nil, fmt.Errorf("catalog: table %q has no column %q", table, col)
		}
		positions[i] = p
	}
	ix := &Index{Name: name, Table: table, Columns: positions, Tree: storage.NewBTree()}
	c.indexes[name] = ix
	t.Indexes = append(t.Indexes, ix)
	return ix, nil
}

// Drop removes an object of the given kind.
func (c *Catalog) Drop(kind sql.ObjectKind, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch kind {
	case sql.ObjTable:
		t, ok := c.tables[name]
		if !ok {
			return ErrNotFound{"table", name}
		}
		for _, ch := range c.channels {
			if ch.Into == name {
				return fmt.Errorf("catalog: table %q is the target of channel %q", name, ch.Name)
			}
		}
		for _, ix := range t.Indexes {
			delete(c.indexes, ix.Name)
		}
		delete(c.tables, name)
	case sql.ObjStream:
		if _, ok := c.streams[name]; ok {
			for _, ch := range c.channels {
				if ch.From == name {
					return fmt.Errorf("catalog: stream %q feeds channel %q", name, ch.Name)
				}
			}
			delete(c.streams, name)
			return nil
		}
		if _, ok := c.derived[name]; ok {
			for _, ch := range c.channels {
				if ch.From == name {
					return fmt.Errorf("catalog: stream %q feeds channel %q", name, ch.Name)
				}
			}
			delete(c.derived, name)
			return nil
		}
		return ErrNotFound{"stream", name}
	case sql.ObjView:
		if _, ok := c.views[name]; !ok {
			return ErrNotFound{"view", name}
		}
		delete(c.views, name)
	case sql.ObjChannel:
		ch, ok := c.channels[name]
		if !ok {
			return ErrNotFound{"channel", name}
		}
		delete(c.channels, name)
		// The table stops being Active if no other channel feeds it.
		still := false
		for _, other := range c.channels {
			if other.Into == ch.Into {
				still = true
			}
		}
		if t, ok := c.tables[ch.Into]; ok && !still {
			t.Active = false
		}
	case sql.ObjIndex:
		ix, ok := c.indexes[name]
		if !ok {
			return ErrNotFound{"index", name}
		}
		delete(c.indexes, name)
		if t, ok := c.tables[ix.Table]; ok {
			for i, cand := range t.Indexes {
				if cand.Name == name {
					t.Indexes = append(t.Indexes[:i], t.Indexes[i+1:]...)
					break
				}
			}
		}
	default:
		return fmt.Errorf("catalog: cannot drop %v", kind)
	}
	return nil
}

// Table looks up a table.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	return t, ok
}

// Stream looks up a base stream.
func (c *Catalog) Stream(name string) (*Stream, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.streams[name]
	return s, ok
}

// Derived looks up a derived stream.
func (c *Catalog) Derived(name string) (*DerivedStream, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.derived[name]
	return d, ok
}

// View looks up a view.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[name]
	return v, ok
}

// Channel looks up a channel.
func (c *Catalog) Channel(name string) (*Channel, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ch, ok := c.channels[name]
	return ch, ok
}

// Names returns the sorted names of one object kind ("tables", "streams",
// "views", "channels"). Streams includes derived streams.
func (c *Catalog) Names(what string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	switch what {
	case "tables":
		for n := range c.tables {
			out = append(out, n)
		}
	case "streams":
		for n := range c.streams {
			out = append(out, n)
		}
		for n := range c.derived {
			out = append(out, n)
		}
	case "views":
		for n := range c.views {
			out = append(out, n)
		}
	case "channels":
		for n := range c.channels {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Tables returns every table; used by checkpointing.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Channels returns every channel, sorted by name.
func (c *Catalog) Channels() []*Channel {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Channel, 0, len(c.channels))
	for _, ch := range c.channels {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DerivedStreams returns every derived stream, sorted by name.
func (c *Catalog) DerivedStreams() []*DerivedStream {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*DerivedStream, 0, len(c.derived))
	for _, d := range c.derived {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
