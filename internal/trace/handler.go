package trace

import (
	"encoding/json"
	"net/http"
)

// wireSpan is the JSON shape served at /debug/traces. The trace ID is a
// hex string so it survives JSON consumers that truncate 64-bit
// integers to doubles.
type wireSpan struct {
	Trace   string `json:"trace"`
	Stage   Stage  `json:"stage"`
	Stream  string `json:"stream,omitempty"`
	Pipe    int64  `json:"pipe,omitempty"`
	StartUS int64  `json:"start_us"`
	DurNS   int64  `json:"dur_ns"`
	Rows    int    `json:"rows,omitempty"`
	Slow    bool   `json:"slow,omitempty"`
	Mode    string `json:"mode,omitempty"`
}

// Handler serves the span ring as a JSON array, oldest span first. Safe
// with a nil tracer (serves an empty array).
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		spans := t.Snapshot()
		out := make([]wireSpan, len(spans))
		for i, s := range spans {
			out[i] = wireSpan{
				Trace:   FormatID(s.Trace),
				Stage:   s.Stage,
				Stream:  s.Stream,
				Pipe:    s.Pipe,
				StartUS: s.Start,
				DurNS:   s.Dur,
				Rows:    s.Rows,
				Slow:    s.Slow,
				Mode:    s.Mode,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
