// Package trace is the engine's end-to-end event tracing layer. It
// stamps a sampled trace context (trace ID + ingest timestamp) onto
// batches as they enter a stream and follows them through every hop:
// pipeline enqueue, worker pickup, window fire, CQ delivery, WAL
// append/fsync, and — across the replication wire — replica apply.
// Completed spans land in a fixed-size ring buffer queryable via the
// "trace" protocol op, the REPL's \trace command, and /debug/traces.
//
// Cost model: the unsampled path pays one atomic increment and one
// time.Now() per ingested batch; only sampled batches (default 1 in
// 256) touch the ring mutex. Every Tracer method is safe on a nil
// receiver, so disabled tracing is a nil check, matching the metrics
// package's nil-safe handle idiom.
//
// Slow-fire detection is orthogonal to sampling: each pipeline tracks
// the earliest unfired ingest timestamp, and a window fire whose
// push-to-fire latency exceeds the configured threshold is
// force-recorded with a fresh trace ID and logged through a structured
// log/slog logger — so latency outliers are always visible even at low
// sample rates.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamrel/internal/metrics"
)

// Stage names one hop of a batch's journey through the engine.
type Stage string

// Span stages, in pipeline order.
const (
	// StageRouterIngest is a shard router accepting and splitting a keyed
	// batch before any engine sees it; the same trace ID then crosses the
	// router→shard hop in the append request.
	StageRouterIngest Stage = "router-ingest"
	// StageIngest is the batch's acceptance into a base stream.
	StageIngest Stage = "ingest"
	// StageEnqueue is the hand-off to one pipeline: queue submission in
	// parallel mode (duration = producer backpressure wait), a zero-cost
	// marker in synchronous mode.
	StageEnqueue Stage = "enqueue"
	// StagePickup is the worker dequeuing the batch; its duration is the
	// time the batch sat in the pipeline's queue.
	StagePickup Stage = "pickup"
	// StageWindowFire is plan execution for one window close.
	StageWindowFire Stage = "window-fire"
	// StageCQDeliver is sink delivery of the window's result rows.
	StageCQDeliver Stage = "cq-deliver"
	// StageWALAppend is the WAL write of a channel's table transaction.
	StageWALAppend Stage = "wal-append"
	// StageWALFsync is the fsync after that write (SyncWAL only).
	StageWALFsync Stage = "wal-fsync"
	// StageReplicaApply closes the chain on a replica: the span carries
	// the primary's trace ID across the replication wire.
	StageReplicaApply Stage = "replica-apply"
)

// Ctx is the trace context that travels with one batch. The zero Ctx is
// "unsampled, unstamped". ID == 0 means the batch is not sampled; Ingest
// (wall-clock nanoseconds at ingest) is stamped on every batch when a
// tracer is active, because slow-fire detection needs it regardless of
// the sampling decision.
type Ctx struct {
	ID     uint64
	Ingest int64
}

// Sampled reports whether spans should be recorded for this batch.
func (c Ctx) Sampled() bool { return c.ID != 0 }

// Span is one completed hop. Start is wall-clock microseconds since the
// epoch (the engine's timestamp unit); Dur is nanoseconds. Mode tags
// window-fire spans with the fire strategy ("incremental", "shared",
// "reexec"); it is empty on other stages.
type Span struct {
	Trace  uint64
	Stage  Stage
	Stream string
	Pipe   int64
	Start  int64
	Dur    int64
	Rows   int
	Slow   bool
	Mode   string
}

// FormatID renders a trace ID the way every surface (REPL, wire, JSON)
// displays it.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID reverses FormatID. It accepts any hex string up to 16 digits.
func ParseID(s string) (uint64, error) {
	if s == "" || len(s) > 16 {
		return 0, fmt.Errorf("trace: bad trace ID %q", s)
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace ID %q", s)
	}
	return id, nil
}

// DefaultSampleEvery is the default sampling rate: one traced batch per
// this many ingested batches.
const DefaultSampleEvery = 256

// DefaultRingSpans is the default span ring capacity.
const DefaultRingSpans = 4096

// Options configures a Tracer.
type Options struct {
	// SampleEvery samples one in N ingested batches; 0 means
	// DefaultSampleEvery, 1 traces every batch.
	SampleEvery int
	// SlowFire force-records any window fire whose push-to-fire latency
	// exceeds it, bypassing sampling; 0 disables slow-fire detection.
	SlowFire time.Duration
	// RingSpans caps the span ring; 0 means DefaultRingSpans.
	RingSpans int
	// Metrics registers traces_sampled/slow_fires/ring-occupancy series;
	// nil keeps the tracer unexported.
	Metrics *metrics.Registry
	// Logger receives the structured slow-fire log; nil uses
	// slog.Default().
	Logger *slog.Logger
}

// Tracer makes sampling decisions, allocates trace IDs, and owns the
// span ring. All methods are nil-receiver-safe.
type Tracer struct {
	every     int64
	threshold time.Duration
	logger    *slog.Logger

	batches atomic.Int64
	// ids seeds trace IDs from a random 64-bit origin so IDs from
	// different engine runs (primary vs replica local traces) do not
	// collide on low integers.
	ids atomic.Uint64

	mu   sync.Mutex
	ring []Span
	next int // write cursor
	n    int // spans held (≤ cap)

	sampledCtr *metrics.Counter
	slowCtr    *metrics.Counter
}

// New creates a tracer. The returned tracer is always enabled; callers
// wanting tracing off keep a nil *Tracer instead.
func New(opts Options) *Tracer {
	every := opts.SampleEvery
	if every <= 0 {
		every = DefaultSampleEvery
	}
	ringCap := opts.RingSpans
	if ringCap <= 0 {
		ringCap = DefaultRingSpans
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	t := &Tracer{
		every:     int64(every),
		threshold: opts.SlowFire,
		logger:    logger,
		ring:      make([]Span, ringCap),
		sampledCtr: opts.Metrics.Counter("streamrel_traces_sampled_total",
			"ingested batches selected for end-to-end tracing"),
		slowCtr: opts.Metrics.Counter("streamrel_slow_fires_total",
			"window fires whose push-to-fire latency exceeded the slow-fire threshold"),
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.ids.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	opts.Metrics.GaugeFunc("streamrel_trace_ring_spans",
		"completed spans currently held in the trace ring",
		func() float64 {
			t.mu.Lock()
			n := t.n
			t.mu.Unlock()
			return float64(n)
		})
	return t
}

// NewID allocates a fresh non-zero trace ID.
func (t *Tracer) NewID() uint64 {
	if t == nil {
		return 0
	}
	for {
		if id := t.ids.Add(1); id != 0 {
			return id
		}
	}
}

// Begin makes the per-batch sampling decision at ingest. Every batch
// gets an ingest timestamp (for slow-fire latency); one in SampleEvery
// additionally gets a trace ID and an ingest span.
func (t *Tracer) Begin(stream string, rows int) Ctx {
	if t == nil {
		return Ctx{}
	}
	now := time.Now()
	c := Ctx{Ingest: now.UnixNano()}
	if t.batches.Add(1)%t.every != 0 {
		return c
	}
	c.ID = t.NewID()
	t.sampledCtr.Inc()
	t.Record(Span{Trace: c.ID, Stage: StageIngest, Stream: stream, Start: now.UnixMicro(), Rows: rows})
	return c
}

// Adopt builds a context for a batch whose trace ID was assigned
// elsewhere (a replica re-injecting the primary's ID); the ingest
// timestamp is local, so downstream slow-fire latency measures local
// apply-to-fire time.
func (t *Tracer) Adopt(id uint64) Ctx {
	if t == nil {
		return Ctx{}
	}
	return Ctx{ID: id, Ingest: time.Now().UnixNano()}
}

// Threshold returns the slow-fire threshold (0 = disabled).
func (t *Tracer) Threshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.threshold
}

// Record appends one completed span to the ring, evicting the oldest
// when full. Only sampled (or slow-forced) paths reach here, so the
// mutex is off the common ingest path.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Snapshot copies the ring's spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// SlowFire counts one threshold-exceeding window fire and emits the
// structured slow-fire log line.
func (t *Tracer) SlowFire(stream string, pipe int64, id uint64, pushToFire, exec, sink time.Duration, rows int) {
	if t == nil {
		return
	}
	t.slowCtr.Inc()
	t.logger.Warn("slow window fire",
		"stream", stream,
		"pipe", pipe,
		"trace", FormatID(id),
		"push_to_fire", pushToFire.String(),
		"exec", exec.String(),
		"deliver", sink.String(),
		"rows", rows,
		"threshold", t.threshold.String())
}
