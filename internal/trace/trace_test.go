package trace

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamrel/internal/metrics"
)

func TestSamplingRate(t *testing.T) {
	tr := New(Options{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		if tr.Begin("s", 1).Sampled() {
			sampled++
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 batches at 1/4, want 4", sampled)
	}
	// Every batch carries an ingest timestamp regardless of sampling.
	if c := tr.Begin("s", 1); c.Ingest == 0 {
		t.Fatal("unsampled batch missing ingest timestamp")
	}
}

func TestSampleEveryBatch(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	for i := 0; i < 5; i++ {
		if !tr.Begin("s", 1).Sampled() {
			t.Fatalf("batch %d not sampled at rate 1", i)
		}
	}
	if got := len(tr.Snapshot()); got != 5 {
		t.Fatalf("snapshot has %d ingest spans, want 5", got)
	}
}

func TestRingWrap(t *testing.T) {
	tr := New(Options{SampleEvery: 1, RingSpans: 4})
	for i := 1; i <= 6; i++ {
		tr.Record(Span{Trace: uint64(i), Stage: StageEnqueue})
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	for i, want := range []uint64{3, 4, 5, 6} {
		if spans[i].Trace != want {
			t.Fatalf("span %d has trace %d, want %d (oldest first)", i, spans[i].Trace, want)
		}
	}
}

func TestRecordIgnoresUntraced(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	tr.Record(Span{Trace: 0, Stage: StageEnqueue})
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("untraced span recorded: ring has %d spans", got)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if c := tr.Begin("s", 1); c.Sampled() || c.Ingest != 0 {
		t.Fatalf("nil tracer Begin returned %+v, want zero Ctx", c)
	}
	if id := tr.NewID(); id != 0 {
		t.Fatalf("nil tracer NewID returned %d", id)
	}
	if c := tr.Adopt(7); c.ID != 0 {
		t.Fatalf("nil tracer Adopt returned %+v", c)
	}
	if th := tr.Threshold(); th != 0 {
		t.Fatalf("nil tracer Threshold returned %v", th)
	}
	tr.Record(Span{Trace: 1})
	if s := tr.Snapshot(); s != nil {
		t.Fatalf("nil tracer Snapshot returned %v", s)
	}
	tr.SlowFire("s", 1, 2, time.Second, time.Second, time.Second, 1)
}

func TestNewIDNonZero(t *testing.T) {
	tr := New(Options{})
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := tr.NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %d", id)
		}
		seen[id] = true
	}
}

func TestMetricsRegistration(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{SampleEvery: 1, Metrics: reg})
	tr.Begin("s", 1)
	tr.SlowFire("s", 1, 2, time.Second, time.Second, 0, 1)
	want := map[string]float64{
		"streamrel_traces_sampled_total": 1,
		"streamrel_slow_fires_total":     1,
		"streamrel_trace_ring_spans":     1, // the ingest span
	}
	for _, smp := range reg.Gather() {
		if v, ok := want[smp.Name]; ok {
			if smp.Value != v {
				t.Fatalf("%s = %v, want %v", smp.Name, smp.Value, v)
			}
			delete(want, smp.Name)
		}
	}
	for name := range want {
		t.Fatalf("metric %s not registered", name)
	}
}

func TestSlowFireLogsStructured(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := New(Options{SlowFire: time.Millisecond, Logger: logger})
	tr.SlowFire("clicks", 3, 42, 5*time.Millisecond, time.Millisecond, time.Millisecond, 10)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("slow-fire log is not JSON: %v (%q)", err, buf.String())
	}
	if line["msg"] != "slow window fire" || line["stream"] != "clicks" {
		t.Fatalf("unexpected slow-fire log line: %v", line)
	}
	if line["trace"] != FormatID(42) {
		t.Fatalf("trace id logged as %v, want %s", line["trace"], FormatID(42))
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := New(Options{SampleEvery: 1})
	tr.Record(Span{Trace: 0xabc, Stage: StageWindowFire, Stream: "s", Pipe: 2,
		Start: 123, Dur: 456, Rows: 7, Slow: true})
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var spans []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &spans); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s["trace"] != FormatID(0xabc) || s["stage"] != "window-fire" || s["slow"] != true {
		t.Fatalf("unexpected span JSON: %v", s)
	}
}

func TestHandlerNilTracer(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != "[]" {
		t.Fatalf("nil tracer served %q, want []", got)
	}
}

func TestFormatID(t *testing.T) {
	if got := FormatID(0xdeadbeef); got != "00000000deadbeef" {
		t.Fatalf("FormatID = %q", got)
	}
}
