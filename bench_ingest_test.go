// The canonical ingest bench ladder (DESIGN.md "Ingest hot path",
// EXPERIMENTS.md E12). Each rung mirrors one cell of cmd/srbench's E12
// table so `go test -bench=BenchmarkIngest -benchmem` reproduces the
// ladder under the standard testing harness: rows/op is 1 (b.N rows
// total), so ns/op is ns/row and allocs/op is allocs/row.
package streamrel

import (
	"fmt"
	"testing"

	"streamrel/internal/workload"
)

const ingestBenchBatch = 256

// benchIngest ingests b.N clickstream rows in 256-row micro-batches into
// k CQs, matching internal/experiments.E12's engine configuration.
func benchIngest(b *testing.B, k int, parallel, durable, sync bool) {
	cfg := Config{DisableSharing: true, TraceSampleEvery: -1}
	if parallel {
		cfg.ParallelCQ = 4
	}
	if durable {
		cfg.Dir = b.TempDir()
		cfg.SyncWAL = sync
	}
	e := mustOpen(b, cfg)
	mustScript(b, e, `CREATE STREAM url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`)
	if durable {
		mustScript(b, e, `
			CREATE TABLE raw_archive (url varchar, atime timestamp, client_ip varchar);
			CREATE CHANNEL raw_ch FROM url_stream INTO raw_archive APPEND;
		`)
	}
	var cqs []*CQ
	for i := 0; i < k; i++ {
		cq, err := e.Subscribe(fmt.Sprintf(`SELECT client_ip, count(*)
			FROM url_stream <VISIBLE 2000 ROWS ADVANCE 500 ROWS>
			WHERE url <> '/none%d' GROUP BY client_ip`, i))
		if err != nil {
			b.Fatal(err)
		}
		defer cq.Close()
		cqs = append(cqs, cq)
	}
	rows := workload.NewClickstream(workload.ClickConfig{Seed: 12, EventsPerSec: 400}).Take(b.N + ingestBenchBatch)
	// Warm pools and lazy init outside the timer.
	if err := e.Append("url_stream", rows[:ingestBenchBatch]...); err != nil {
		b.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	rows = rows[ingestBenchBatch : ingestBenchBatch+b.N]
	b.ReportAllocs()
	b.ResetTimer()
	for off := 0; off < len(rows); off += ingestBenchBatch {
		end := off + ingestBenchBatch
		if end > len(rows) {
			end = len(rows)
		}
		if err := e.Append("url_stream", rows[off:end]...); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	for _, cq := range cqs {
		cq.Drain()
	}
}

// Memory rung: pure hot path, no durability.

func BenchmarkIngestK1Serial(b *testing.B)    { benchIngest(b, 1, false, false, false) }
func BenchmarkIngestK1Parallel(b *testing.B)  { benchIngest(b, 1, true, false, false) }
func BenchmarkIngestK4Serial(b *testing.B)    { benchIngest(b, 4, false, false, false) }
func BenchmarkIngestK4Parallel(b *testing.B)  { benchIngest(b, 4, true, false, false) }
func BenchmarkIngestK16Serial(b *testing.B)   { benchIngest(b, 16, false, false, false) }
func BenchmarkIngestK16Parallel(b *testing.B) { benchIngest(b, 16, true, false, false) }

// Durable rung: base stream archived via APPEND channel, so each batch
// commits a transaction and appends to the WAL.

func BenchmarkIngestDurableSyncOffSerial(b *testing.B)   { benchIngest(b, 1, false, true, false) }
func BenchmarkIngestDurableSyncOffParallel(b *testing.B) { benchIngest(b, 1, true, true, false) }
func BenchmarkIngestDurableSyncOnSerial(b *testing.B)    { benchIngest(b, 1, false, true, true) }
func BenchmarkIngestDurableSyncOnParallel(b *testing.B)  { benchIngest(b, 1, true, true, true) }
