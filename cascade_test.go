package streamrel

import (
	"testing"
	"time"
)

// TestCascadedDerivedStreams chains derived streams: raw events → per-
// minute counts → five-minute rollups of those counts, each archived by
// its own channel. This is the composition §3.2's "query composition
// features of the language" promises.
func TestCascadedDerivedStreams(t *testing.T) {
	e := openMem(t)
	err := e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);

		-- Level 1: per-minute totals.
		CREATE STREAM minute_totals AS
			SELECT sum(v) AS total, cq_close(*) AS stime
			FROM s <ADVANCE '1 minute'>;

		-- Level 2: five-minute rollup of the per-minute totals.
		CREATE STREAM five_min AS
			SELECT sum(total) AS total, count(*) AS minutes, cq_close(*) AS stime
			FROM minute_totals <VISIBLE '5 minutes' ADVANCE '5 minutes'>;

		CREATE TABLE minute_archive (total bigint, stime timestamp);
		CREATE CHANNEL c1 FROM minute_totals INTO minute_archive;
		CREATE TABLE five_archive (total bigint, minutes bigint, stime timestamp);
		CREATE CHANNEL c2 FROM five_min INTO five_archive;
	`)
	if err != nil {
		t.Fatal(err)
	}

	base := MustTimestamp("2009-01-04 00:00:00")
	// One event of value 1 per minute for 11 minutes.
	for m := 0; m < 11; m++ {
		if err := e.Append("s", Row{Int(1), Timestamp(base.Add(time.Duration(m)*time.Minute + time.Second))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AdvanceTime("s", base.Add(11*time.Minute)); err != nil {
		t.Fatal(err)
	}

	// Level 1 archived 11 minutes.
	expectData(t, mustQuery(t, e, `SELECT count(*), sum(total) FROM minute_archive`), "11|11")

	// Level 2 closes at :05 and :10. An emission stamped at close c
	// belongs to the downstream window starting at c (windows are
	// half-open [a, b)), so the :05 window holds the level-1 emissions
	// stamped :01–:04 (4 minutes) and the :10 window holds :05–:09 (5).
	rows := mustQuery(t, e, `SELECT total, minutes, stime FROM five_archive ORDER BY stime`)
	expectData(t, rows,
		"4|4|2009-01-04 00:05:00.000000",
		"5|5|2009-01-04 00:10:00.000000")

	// A live CQ can window the second-level stream too.
	cq, err := e.Subscribe(`SELECT max(total) FROM five_min <SLICES 2 WINDOWS>`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	for m := 11; m < 21; m++ {
		e.Append("s", Row{Int(2), Timestamp(base.Add(time.Duration(m)*time.Minute + time.Second))})
	}
	e.AdvanceTime("s", base.Add(21*time.Minute))
	got := 0
	for {
		b, ok := cq.TryNext()
		if !ok {
			break
		}
		if len(b.Rows) == 1 && !b.Rows[0][0].IsNull() {
			got++
		}
	}
	if got < 2 {
		t.Fatalf("third-level CQ fired %d windows", got)
	}
	// Dependency order on drop is enforced end to end.
	if _, err := e.Exec(`DROP STREAM minute_totals`); err == nil {
		t.Fatal("dropping a derived stream feeding a channel must fail")
	}
	mustExec(t, e, `DROP CHANNEL c2`)
	mustExec(t, e, `DROP STREAM five_min`)
	mustExec(t, e, `DROP CHANNEL c1`)
	mustExec(t, e, `DROP STREAM minute_totals`)
}

// TestDerivedStreamRecoveryCascade: the whole cascade survives restart.
func TestDerivedStreamRecoveryCascade(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	err = e.ExecScript(`
		CREATE STREAM s (v bigint, at timestamp CQTIME USER);
		CREATE STREAM l1 AS SELECT sum(v) AS total, cq_close(*) AS stime FROM s <ADVANCE '1 minute'>;
		CREATE STREAM l2 AS SELECT sum(total) AS total, cq_close(*) AS stime FROM l1 <ADVANCE '2 minutes'>;
		CREATE TABLE a2 (total bigint, stime timestamp);
		CREATE CHANNEL c2 FROM l2 INTO a2;
	`)
	if err != nil {
		t.Fatal(err)
	}
	base := MustTimestamp("2009-01-04 00:00:00")
	for m := 0; m < 4; m++ {
		e.Append("s", Row{Int(1), Timestamp(base.Add(time.Duration(m)*time.Minute + time.Second))})
	}
	e.AdvanceTime("s", base.Add(4*time.Minute))
	// l1 emissions are stamped :01..:04; l2's [.., :02) window holds the
	// :01 emission (total 1) and [:02, :04) holds :02+:03 (total 2).
	rows := mustQuery(t, e, `SELECT total, stime FROM a2 ORDER BY stime`)
	expectData(t, rows,
		"1|2009-01-04 00:02:00.000000",
		"2|2009-01-04 00:04:00.000000")
	e.Close()

	e2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Continue the stream. The cascade resumes past :04 (a2's high-water
	// mark). l1's own in-flight state was NOT archived — the paper's
	// recovery model rebuilds only what Active Tables hold — so the l1
	// emission stamped :04 (consumed into l2's in-flight window before the
	// crash) is lost, and the restarted l1 re-emits from the next arriving
	// data: the loss is bounded by one window.
	for m := 4; m < 6; m++ {
		e2.Append("s", Row{Int(1), Timestamp(base.Add(time.Duration(m)*time.Minute + time.Second))})
	}
	e2.AdvanceTime("s", base.Add(6*time.Minute))
	rows = mustQuery(t, e2, `SELECT total, stime FROM a2 ORDER BY stime`)
	expectData(t, rows,
		"1|2009-01-04 00:02:00.000000",
		"2|2009-01-04 00:04:00.000000",
		"1|2009-01-04 00:06:00.000000")
}
