package streamrel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestContinuousEqualsSnapshot is the paper's central semantic claim
// turned into a property test: "stored data is simply streaming data that
// has been entered into persistent structures" (§2.3). For each window a
// continuous query reports, running the equivalent snapshot query over
// the same rows loaded into a table must give identical results.
//
// The harness generates random event streams, runs a tumbling-window CQ,
// and for every window close re-runs the query as plain SQL over a table
// containing exactly that window's rows.
func TestContinuousEqualsSnapshot(t *testing.T) {
	queries := []struct {
		cq       string // over the stream (with window)
		snapshot string // over the table
	}{
		{
			`SELECT url, count(*) AS n FROM s <ADVANCE '1 minute'> GROUP BY url ORDER BY url`,
			`SELECT url, count(*) AS n FROM w GROUP BY url ORDER BY url`,
		},
		{
			`SELECT count(*), sum(v), min(v), max(v), avg(v) FROM s <ADVANCE '1 minute'>`,
			`SELECT count(*), sum(v), min(v), max(v), avg(v) FROM w`,
		},
		{
			`SELECT url, sum(v) FROM s <ADVANCE '1 minute'> WHERE v % 3 = 0 GROUP BY url HAVING count(*) > 1 ORDER BY url`,
			`SELECT url, sum(v) FROM w WHERE v % 3 = 0 GROUP BY url HAVING count(*) > 1 ORDER BY url`,
		},
		{
			`SELECT DISTINCT url FROM s <ADVANCE '1 minute'> ORDER BY url LIMIT 5`,
			`SELECT DISTINCT url FROM w ORDER BY url LIMIT 5`,
		},
		{
			`SELECT url, count(distinct v) FROM s <ADVANCE '1 minute'> GROUP BY url ORDER BY url`,
			`SELECT url, count(distinct v) FROM w GROUP BY url ORDER BY url`,
		},
		{
			`SELECT upper(url), v * 2 FROM s <ADVANCE '1 minute'> WHERE v > 50 ORDER BY 2 DESC, 1 LIMIT 10`,
			`SELECT upper(url), v * 2 FROM w WHERE v > 50 ORDER BY 2 DESC, 1 LIMIT 10`,
		},
	}

	for qi, q := range queries {
		for _, mode := range []string{"incremental", "shared", "reexec"} {
			rng := rand.New(rand.NewSource(int64(qi) + 100))
			eng := openMemMode(t, mode)
			mustExec(t, eng, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
			mustExec(t, eng, `CREATE TABLE w (url varchar, at timestamp, v bigint)`)
			cq, err := eng.Subscribe(q.cq)
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}

			// Generate ~8 minutes of random events, tracking each minute's
			// rows (the windows a tumbling 1m CQ will see).
			base := MustTimestamp("2009-01-04 00:00:00")
			byMinute := map[int64][]Row{}
			ts := base.UnixMicro()
			for i := 0; i < 3000; i++ {
				ts += int64(rng.Intn(300_000)) // 0-0.3s gaps
				row := Row{
					String(fmt.Sprintf("/u%d", rng.Intn(8))),
					Timestamp(time.UnixMicro(ts)),
					Int(int64(rng.Intn(100))),
				}
				if err := eng.Append("s", row); err != nil {
					t.Fatal(err)
				}
				byMinute[ts/60_000_000] = append(byMinute[ts/60_000_000], row)
			}
			eng.AdvanceTime("s", time.UnixMicro(ts).Add(2*time.Minute).UTC())

			checked := 0
			for {
				b, ok := cq.TryNext()
				if !ok {
					break
				}
				// Load exactly this window's rows into w and run the
				// snapshot query.
				mustExec(t, eng, `TRUNCATE TABLE w`)
				minute := b.Close.UnixMicro()/60_000_000 - 1
				if rows := byMinute[minute]; len(rows) > 0 {
					if err := eng.BulkInsert("w", rows); err != nil {
						t.Fatal(err)
					}
				}
				snap := mustQuery(t, eng, q.snapshot)
				got := make([]string, len(b.Rows))
				for i, r := range b.Rows {
					got[i] = r.String()
				}
				want := make([]string, len(snap.Data))
				for i, r := range snap.Data {
					want[i] = r.String()
				}
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("query %d mode=%s window %s:\ncontinuous:\n%s\nsnapshot:\n%s",
						qi, mode, b.Close, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
				checked++
			}
			if checked < 5 {
				t.Fatalf("query %d: only %d windows compared", qi, checked)
			}
			cq.Close()
			eng.Close()
		}
	}
}

// openMemMode opens an engine pinned to one window-fire strategy:
// "incremental" (IVM where eligible), "shared" (slice sharing, no IVM),
// or "reexec" (per-fire plan re-execution only).
func openMemMode(t *testing.T, mode string) *Engine {
	t.Helper()
	cfg := Config{}
	switch mode {
	case "incremental":
	case "shared":
		cfg.DisableIVM = true
	case "reexec":
		cfg.DisableIVM, cfg.DisableSharing = true, true
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// TestSlidingWindowEqualsSnapshot does the same for sliding windows: each
// close of a VISIBLE 3m / ADVANCE 1m window must equal the snapshot query
// over the union of the last three minutes' rows.
func TestSlidingWindowEqualsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	eng := openMem(t)
	mustExec(t, eng, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
	mustExec(t, eng, `CREATE TABLE w (url varchar, at timestamp, v bigint)`)
	cq, err := eng.Subscribe(
		`SELECT url, count(*), sum(v) FROM s <VISIBLE '3 minutes' ADVANCE '1 minute'> GROUP BY url ORDER BY url`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	base := MustTimestamp("2009-01-04 00:00:00")
	byMinute := map[int64][]Row{}
	ts := base.UnixMicro()
	for i := 0; i < 4000; i++ {
		ts += int64(rng.Intn(200_000))
		row := Row{
			String(fmt.Sprintf("/u%d", rng.Intn(6))),
			Timestamp(time.UnixMicro(ts)),
			Int(int64(rng.Intn(50))),
		}
		if err := eng.Append("s", row); err != nil {
			t.Fatal(err)
		}
		byMinute[ts/60_000_000] = append(byMinute[ts/60_000_000], row)
	}
	eng.AdvanceTime("s", time.UnixMicro(ts).Add(2*time.Minute).UTC())

	checked := 0
	for {
		b, ok := cq.TryNext()
		if !ok {
			break
		}
		mustExec(t, eng, `TRUNCATE TABLE w`)
		endMinute := b.Close.UnixMicro() / 60_000_000
		for m := endMinute - 3; m < endMinute; m++ {
			if rows := byMinute[m]; len(rows) > 0 {
				if err := eng.BulkInsert("w", rows); err != nil {
					t.Fatal(err)
				}
			}
		}
		snap := mustQuery(t, eng, `SELECT url, count(*), sum(v) FROM w GROUP BY url ORDER BY url`)
		if len(b.Rows) != len(snap.Data) {
			t.Fatalf("window %s: %d continuous rows vs %d snapshot rows", b.Close, len(b.Rows), len(snap.Data))
		}
		for i := range b.Rows {
			if b.Rows[i].String() != snap.Data[i].String() {
				t.Fatalf("window %s row %d: %s vs %s", b.Close, i, b.Rows[i], snap.Data[i])
			}
		}
		checked++
	}
	if checked < 8 {
		t.Fatalf("only %d windows compared", checked)
	}
}
