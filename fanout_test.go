package streamrel

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fanoutQueries are eight CQs of varying shape over one stream — the
// fan-out workload the parallel mode targets.
func fanoutQueries() []string {
	return []string{
		`SELECT url, count(*) FROM hits <ADVANCE '1 minute'> GROUP BY url`,
		`SELECT count(*) FROM hits <VISIBLE '3 minutes' ADVANCE '1 minute'>`,
		`SELECT client_ip, count(*) FROM hits <VISIBLE '2 minutes' ADVANCE '2 minutes'> GROUP BY client_ip`,
		`SELECT count(*) FROM hits <VISIBLE '5 minutes' ADVANCE '1 minute'> WHERE url = '/a'`,
		`SELECT url FROM hits <VISIBLE 5 ROWS ADVANCE 5 ROWS>`,
		`SELECT count(*) FROM hits <VISIBLE 16 ROWS ADVANCE 4 ROWS>`,
		`SELECT url, count(*) FROM hits <ADVANCE '2 minutes'> GROUP BY url`,
		`SELECT client_ip FROM hits <VISIBLE 3 ROWS ADVANCE 3 ROWS> WHERE url = '/b'`,
	}
}

// runFanout feeds a deterministic workload to eight CQs and returns each
// CQ's batches rendered as strings.
func runFanout(t *testing.T, cfg Config) [][]string {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE STREAM hits (url varchar, atime timestamp CQTIME USER, client_ip varchar)`)
	queries := fanoutQueries()
	cqs := make([]*CQ, len(queries))
	for i, q := range queries {
		cq, err := e.Subscribe(q)
		if err != nil {
			t.Fatalf("Subscribe(%q): %v", q, err)
		}
		cqs[i] = cq
		defer cq.Close()
	}
	rng := rand.New(rand.NewSource(42))
	urls := []string{"/a", "/b", "/c"}
	ts := int64(60_000_000 * 100)
	for step := 0; step < 30; step++ {
		rows := make([]Row, 1+rng.Intn(6))
		for i := range rows {
			ts += int64(rng.Intn(15_000_000))
			rows[i] = Row{
				String(urls[rng.Intn(len(urls))]),
				Timestamp(time.UnixMicro(ts).UTC()),
				String(fmt.Sprintf("10.0.0.%d", rng.Intn(4))),
			}
		}
		if err := e.Append("hits", rows...); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AdvanceTime("hits", time.UnixMicro(ts+600_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	out := make([][]string, len(cqs))
	for i, cq := range cqs {
		for _, b := range cq.Drain() {
			for _, r := range b.Rows {
				out[i] = append(out[i], fmt.Sprintf("%s|%s", b.Close.Format("15:04:05"), r.String()))
			}
		}
	}
	return out
}

// TestFanoutParallelMatchesSerial is the acceptance equivalence test: with
// ParallelCQ enabled, every CQ's output — batch boundaries, row contents,
// row order — is byte-identical to the synchronous engine, with sharing
// both on and off.
func TestFanoutParallelMatchesSerial(t *testing.T) {
	for _, sharing := range []bool{false, true} {
		serial := runFanout(t, Config{DisableSharing: !sharing})
		parallel := runFanout(t, Config{DisableSharing: !sharing, ParallelCQ: 4})
		for i := range serial {
			if len(serial[i]) == 0 {
				t.Fatalf("CQ %d produced no output; workload too small", i)
			}
			for j := range serial[i] {
				if j >= len(parallel[i]) || serial[i][j] != parallel[i][j] {
					t.Fatalf("CQ %d diverges at %d (sharing=%v):\nserial:   %v\nparallel: %v",
						i, j, sharing, serial[i], parallel[i])
				}
			}
			if len(parallel[i]) != len(serial[i]) {
				t.Fatalf("CQ %d: parallel produced %d results, serial %d",
					i, len(parallel[i]), len(serial[i]))
			}
		}
	}
}

// TestParallelProducerStress is the -race stress test: goroutines push to
// distinct streams (no contention expected) while several more hammer one
// shared stream under LateClamp (timestamps collide and clamp). Per-CQ
// window contents on the distinct streams must match a serial engine fed
// the same rows; the shared stream's CQ must see every row exactly once
// across monotonically ordered windows.
func TestParallelProducerStress(t *testing.T) {
	const (
		producers   = 4
		sharedProds = 3
		batches     = 25
		batchRows   = 8
	)
	e, err := Open(Config{ParallelCQ: 4, LateRows: LateClamp})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	serial, err := Open(Config{LateRows: LateClamp})
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()

	cqText := func(s string) string {
		return fmt.Sprintf(`SELECT url, count(*) FROM %s <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url`, s)
	}
	mkStream := func(eng *Engine, name string) *CQ {
		t.Helper()
		mustExec(t, eng, fmt.Sprintf(
			`CREATE STREAM %s (url varchar, atime timestamp CQTIME USER, client_ip varchar)`, name))
		cq, err := eng.Subscribe(cqText(name))
		if err != nil {
			t.Fatal(err)
		}
		return cq
	}

	parCQs := make([]*CQ, producers)
	serCQs := make([]*CQ, producers)
	for i := 0; i < producers; i++ {
		name := fmt.Sprintf("s%d", i)
		parCQs[i] = mkStream(e, name)
		serCQs[i] = mkStream(serial, name)
	}
	sharedCQ := mkStream(e, "shared")

	// genBatch is deterministic per (producer, batch), so the serial engine
	// can replay the identical feed.
	genBatch := func(prod, step int) []Row {
		rng := rand.New(rand.NewSource(int64(prod*1000 + step)))
		rows := make([]Row, batchRows)
		base := int64(60_000_000) * int64(100+step*2)
		for i := range rows {
			rows[i] = Row{
				String(fmt.Sprintf("/p%d", rng.Intn(3))),
				Timestamp(time.UnixMicro(base + int64(rng.Intn(90_000_000))).UTC()),
				String("ip"),
			}
		}
		return rows
	}

	var wg sync.WaitGroup
	errs := make(chan error, producers+sharedProds)
	for prod := 0; prod < producers; prod++ {
		wg.Add(1)
		go func(prod int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", prod)
			for step := 0; step < batches; step++ {
				if err := e.Append(name, genBatch(prod, step)...); err != nil {
					errs <- fmt.Errorf("producer %d: %w", prod, err)
					return
				}
			}
		}(prod)
	}
	var sharedPushed int64
	var sharedMu sync.Mutex
	for prod := 0; prod < sharedProds; prod++ {
		wg.Add(1)
		go func(prod int) {
			defer wg.Done()
			for step := 0; step < batches; step++ {
				rows := genBatch(100+prod, step)
				if err := e.Append("shared", rows...); err != nil {
					errs <- fmt.Errorf("shared producer %d: %w", prod, err)
					return
				}
				sharedMu.Lock()
				sharedPushed += int64(len(rows))
				sharedMu.Unlock()
			}
		}(prod)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Close all windows and drain the workers.
	endTS := time.UnixMicro(60_000_000 * 1000)
	for i := 0; i < producers; i++ {
		if err := e.AdvanceTime(fmt.Sprintf("s%d", i), endTS); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AdvanceTime("shared", endTS); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Distinct streams: replay each feed serially and compare exactly.
	render := func(cq *CQ) []string {
		var out []string
		for _, b := range cq.Drain() {
			for _, r := range b.Rows {
				out = append(out, fmt.Sprintf("%d|%s", b.Close.UnixMicro(), r.String()))
			}
		}
		return out
	}
	for prod := 0; prod < producers; prod++ {
		name := fmt.Sprintf("s%d", prod)
		for step := 0; step < batches; step++ {
			if err := serial.Append(name, genBatch(prod, step)...); err != nil {
				t.Fatal(err)
			}
		}
		if err := serial.AdvanceTime(name, endTS); err != nil {
			t.Fatal(err)
		}
		got, want := render(parCQs[prod]), render(serCQs[prod])
		if len(got) == 0 {
			t.Fatalf("stream %s produced no windows", name)
		}
		for j := range want {
			if j >= len(got) || got[j] != want[j] {
				t.Fatalf("stream %s diverges at %d:\nparallel: %v\nserial:   %v", name, j, got, want)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("stream %s: parallel %d results, serial %d", name, len(got), len(want))
		}
	}

	// Shared stream: interleaving is nondeterministic, but LateClamp keeps
	// every row, window closes must be monotone, and with VISIBLE = 2 ×
	// ADVANCE every retained row is counted exactly twice.
	var lastClose int64 = -1 << 62
	var counted int64
	for _, b := range sharedCQ.Drain() {
		if b.Close.UnixMicro() <= lastClose {
			t.Fatalf("shared CQ close %d not after %d", b.Close.UnixMicro(), lastClose)
		}
		lastClose = b.Close.UnixMicro()
		for _, r := range b.Rows {
			counted += r[1].Int()
		}
	}
	if counted != 2*sharedPushed {
		t.Fatalf("shared CQ counted %d row-appearances, want %d (2 × %d pushed)",
			counted, 2*sharedPushed, sharedPushed)
	}
	if dropped := e.Stats().LateDropped; dropped != 0 {
		t.Fatalf("LateClamp dropped %d rows", dropped)
	}
}
