package streamrel

import (
	"fmt"
	"sync"
	"time"

	"streamrel/internal/sql"
	"streamrel/internal/stream"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// Batch is the output of one window close of a continuous query: the
// window's result relation plus the boundary timestamp (what cq_close(*)
// returned inside the window).
type Batch struct {
	Close time.Time
	Rows  []Row
}

// CQ is a handle on a running continuous query. Results queue internally;
// read them with Next (blocking) or TryNext (non-blocking). In the default
// synchronous mode every batch produced by an Append or AdvanceTime call
// is already queued when that call returns. With Config.ParallelCQ the
// query's batches flow through a mailbox drained by the work-stealing
// scheduler pool: they arrive in the same order with the same contents,
// but asynchronously — call Engine.Flush (or read with Next) to wait for
// them.
type CQ struct {
	// Columns names and types the result rows.
	Columns Schema
	// SharedAggregation reports whether this CQ computes via shared window
	// slices (the paper's shared processing).
	SharedAggregation bool
	// Incremental reports whether this CQ is maintained incrementally:
	// fires emit from materialized per-group state (internal/ivm) instead
	// of re-executing the plan over the window's rows.
	Incremental bool

	eng  *Engine
	pipe *stream.Pipeline

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Batch
	closed bool
}

// Subscribe compiles a continuous query — a SELECT over a windowed stream
// — and starts it. The CQ runs until Close (paper §3.1: "CQs produce
// answers incrementally and run until they are explicitly terminated").
func (e *Engine) Subscribe(sqlText string) (*CQ, error) {
	return e.SubscribeArgs(sqlText)
}

// SubscribeArgs starts a continuous query with $1, $2, … placeholders
// bound to args; the bindings are fixed for the CQ's lifetime.
func (e *Engine) SubscribeArgs(sqlText string, args ...Value) (*CQ, error) {
	stmt, err := e.parseWithArgs(sqlText, args)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("streamrel: Subscribe takes a SELECT")
	}
	p, err := e.planner.BuildSelect(sel)
	if err != nil {
		return nil, err
	}
	if p.Stream == nil {
		return nil, fmt.Errorf("streamrel: query reads no stream; use Query for snapshot queries")
	}
	cq := &CQ{Columns: p.Columns, eng: e}
	cq.cond = sync.NewCond(&cq.mu)
	pipe, err := e.rt.Subscribe(p, func(_ trace.Ctx, closeTS int64, rows []types.Row) error {
		cq.mu.Lock()
		if !cq.closed {
			cq.queue = append(cq.queue, Batch{Close: time.UnixMicro(closeTS).UTC(), Rows: rows})
			cq.cond.Broadcast()
		}
		cq.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	cq.pipe = pipe
	cq.SharedAggregation = pipe.Shared()
	cq.Incremental = pipe.Incremental()
	return cq, nil
}

// TryNext returns the next queued batch without blocking.
func (cq *CQ) TryNext() (Batch, bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	if len(cq.queue) == 0 {
		return Batch{}, false
	}
	b := cq.queue[0]
	cq.queue = cq.queue[1:]
	return b, true
}

// Next blocks until a batch is available or the CQ is closed. The second
// result is false once the CQ is closed and drained.
func (cq *CQ) Next() (Batch, bool) {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	for len(cq.queue) == 0 && !cq.closed {
		cq.cond.Wait()
	}
	if len(cq.queue) == 0 {
		return Batch{}, false
	}
	b := cq.queue[0]
	cq.queue = cq.queue[1:]
	return b, true
}

// Drain returns every queued batch.
func (cq *CQ) Drain() []Batch {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	out := cq.queue
	cq.queue = nil
	return out
}

// Pending reports the number of queued batches.
func (cq *CQ) Pending() int {
	cq.mu.Lock()
	defer cq.mu.Unlock()
	return len(cq.queue)
}

// Close terminates the continuous query and wakes blocked readers.
func (cq *CQ) Close() {
	cq.mu.Lock()
	if cq.closed {
		cq.mu.Unlock()
		return
	}
	cq.closed = true
	cq.cond.Broadcast()
	cq.mu.Unlock()
	cq.eng.rt.Unsubscribe(cq.pipe)
}

// RuntimeStats exposes continuous-processing counters.
type RuntimeStats = stream.Stats

// Stats returns stream-runtime counters (pipelines, shared aggregations,
// windows fired).
func (e *Engine) Stats() RuntimeStats { return e.rt.Stats() }
