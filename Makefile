# Development targets. `make check` is what CI should run.

GO ?= go

.PHONY: all build test race vet fmt staticcheck cover bench check fuzz repl-smoke cluster-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck runs if the binary is on PATH and is skipped (loudly)
# otherwise, so `make check` works in minimal environments. CI installs
# the pinned version (see .github/workflows/ci.yml) and always runs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

check: build fmt vet staticcheck test race

# bench regenerates the fan-out scaling numbers (experiment E9) into
# BENCH_fanout.json, the tracing-overhead numbers (E11) into
# BENCH_trace.json, the ingest hot-path ladder (E12) into
# BENCH_ingest.json, the shard scale-out ladder (E13) into
# BENCH_shard.json, the incremental-maintenance ladder (E14) into
# BENCH_ivm.json, the scheduler + plan-sharing ladder (E15) into
# BENCH_sched.json, and the sysmon self-observability overhead (E16)
# into BENCH_sysmon.json — stamped with timestamp+git sha and gated on
# the checked-in allocs budget — so the trajectories are tracked across
# PRs.
# Dirty-tree stamps land in bench-stamps/ (gitignored). Use `go test
# -bench .` for the full microbenchmark suite; `go test -bench
# BenchmarkIngest -benchmem` is the ladder's testing.B counterpart.
bench:
	$(GO) run ./cmd/srbench -scale 0.2 -only E9 -json BENCH_fanout.json
	$(GO) run ./cmd/srbench -scale 0.2 -only E11 -json BENCH_trace.json
	$(GO) run ./cmd/srbench -scale 0.5 -only E12 -json BENCH_ingest.json -stamp -budget BENCH_budget.json
	$(GO) run ./cmd/srbench -scale 0.5 -only E13 -json BENCH_shard.json -stamp
	$(GO) run ./cmd/srbench -scale 0.5 -only E14 -json BENCH_ivm.json -stamp -budget BENCH_budget.json
	$(GO) run ./cmd/srbench -scale 1 -only E15 -json BENCH_sched.json -stamp -budget BENCH_budget.json
	$(GO) run ./cmd/srbench -scale 1 -only E16 -json BENCH_sysmon.json -stamp -budget BENCH_budget.json

# fuzz exercises the binary decoders (WAL batches, replication frames)
# that parse untrusted bytes off disk and off the wire, the shard
# router's batch split/merge round-trip, and the incremental-maintenance
# equivalence property (delta-maintained fires == re-executed fires for
# arbitrary append/advance sequences).
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeRecords -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run=^$$ -fuzz=FuzzDecodeEvent -fuzztime=$(FUZZTIME) ./internal/repl
	$(GO) test -run=^$$ -fuzz=FuzzShardSplitMerge -fuzztime=$(FUZZTIME) ./internal/shard
	$(GO) test -run=^$$ -fuzz=FuzzIVMEquivalence -fuzztime=$(FUZZTIME) .

# repl-smoke boots a primary and a replica streamreld as separate
# processes, ingests through the primary, and asserts the replica
# converges with settled lag metrics.
repl-smoke:
	$(GO) run ./cmd/replsmoke

# cluster-smoke boots two shard streamrelds, a router, a replica of one
# shard, and a single-node reference daemon as separate processes,
# ingests the same keyed workload into both paths, and asserts the
# router's scatter-gather query and merged CQ output match the
# single-node run byte for byte.
cluster-smoke:
	$(GO) run ./cmd/clustersmoke
