# Development targets. `make check` is what CI should run.

GO ?= go

.PHONY: all build test race vet bench check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

# bench regenerates the fan-out scaling numbers (experiment E9) into
# BENCH_fanout.json so the throughput trajectory is tracked across PRs.
# Use `go test -bench .` for the full microbenchmark suite.
bench:
	$(GO) run ./cmd/srbench -scale 0.2 -only E9 -json BENCH_fanout.json
