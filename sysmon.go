package streamrel

import (
	"fmt"
	"net/http"
	"strings"

	"streamrel/internal/sql"
	"streamrel/internal/sysmon"
	"streamrel/internal/trace"
	"streamrel/internal/types"
)

// The sys.* namespace holds reserved, engine-created telemetry streams
// (sys.metrics, sys.pipelines, sys.slow_fires, sys.repl — see
// internal/sysmon). They exist when Config.SysMonInterval is non-zero,
// carry CQTIME SYSTEM semantics, and are ephemeral: never WAL-logged,
// never replicated, never checkpointed — a restarted engine recreates
// them empty. User DDL and DML against the namespace is rejected;
// Subscribe (and CREATE CHANNEL … FROM sys.…) is how telemetry leaves.

// isSysName reports whether name lives in the reserved sys namespace.
func isSysName(name string) bool {
	return name == "sys" || strings.HasPrefix(name, "sys.")
}

// errSysReserved is the uniform rejection for user writes to sys.*.
func errSysReserved(name string) error {
	return fmt.Errorf("streamrel: %q is in the reserved sys namespace (engine-created telemetry; read-only)", name)
}

// sysDDLTarget returns the offending name when a user DDL statement would
// create or drop an object in the sys namespace, "" otherwise. Reading
// from sys.* (a channel's FROM clause, view queries) is allowed.
func sysDDLTarget(stmt sql.Statement) string {
	switch s := stmt.(type) {
	case *sql.CreateTable:
		if isSysName(s.Name) {
			return s.Name
		}
	case *sql.CreateStream:
		if isSysName(s.Name) {
			return s.Name
		}
	case *sql.CreateDerivedStream:
		if isSysName(s.Name) {
			return s.Name
		}
	case *sql.CreateView:
		if isSysName(s.Name) {
			return s.Name
		}
	case *sql.CreateChannel:
		if isSysName(s.Name) {
			return s.Name
		}
		if isSysName(s.Into) {
			return s.Into
		}
	case *sql.CreateIndex:
		if isSysName(s.Name) {
			return s.Name
		}
		if isSysName(s.Table) {
			return s.Table
		}
	case *sql.Drop:
		if isSysName(s.Name) {
			return s.Name
		}
	}
	return ""
}

// initSysMon creates the reserved streams and the monitor. Called from
// Open after recovery, so the streams never appear in the DDL log, the
// WAL, checkpoints, or replication snapshots.
func (e *Engine) initSysMon() error {
	for _, def := range sysmon.Streams() {
		if _, err := e.cat.CreateStreamPartitioned(def.Name, def.Schema, def.CQTimeCol, true, -1); err != nil {
			return fmt.Errorf("streamrel: creating %s: %w", def.Name, err)
		}
		if err := e.rt.RegisterInternalSource(def.Name, def.Schema, def.CQTimeCol); err != nil {
			return fmt.Errorf("streamrel: registering %s: %w", def.Name, err)
		}
	}
	interval := e.cfg.SysMonInterval
	if interval < 0 {
		interval = 0 // streams + manual SysSnapshot only
	}
	spans := func() []trace.Span { return nil }
	if e.tracer != nil {
		spans = e.tracer.Snapshot
	}
	e.sysmon = sysmon.New(sysmon.Config{
		Gather: e.reg.Gather,
		Stats:  e.rt.Stats,
		Spans:  spans,
		ReplInfo: func() (string, uint64) {
			if e.replicaMode.Load() {
				return "replica", 0
			}
			if e.hub != nil {
				return "primary", e.hub.LSN()
			}
			return "", 0
		},
		Push:     e.sysAppend,
		Now:      e.cfg.Now,
		Interval: interval,
		Metrics:  e.reg,
		Logger:   e.cfg.Logger,
	})
	e.sysmon.Start()
	return nil
}

// sysAppend is the monitor's path into the stream runtime: it stamps
// CQTIME SYSTEM arrival time and pushes, bypassing the write gate (a
// replica still observes itself), the WAL, replication publish, trace
// sampling and user-facing row counters (internal source).
func (e *Engine) sysAppend(streamName string, rows []types.Row) error {
	st, ok := e.cat.Stream(streamName)
	if !ok {
		return fmt.Errorf("streamrel: sys stream %q not registered", streamName)
	}
	e.stampSystemTime(st, rows)
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil
	}
	return e.rt.PushBatch(streamName, rows)
}

// SysSnapshot takes one telemetry snapshot immediately, appending fresh
// rows to every sys.* stream. It is how tests and embedders drive the
// monitor deterministically (set SysMonInterval < 0 for streams without
// the background ticker). Errors if sysmon is disabled.
func (e *Engine) SysSnapshot() error {
	if e.sysmon == nil {
		return fmt.Errorf("streamrel: sysmon is disabled (set Config.SysMonInterval)")
	}
	return e.sysmon.Tick()
}

// SubscribeAlert turns a continuous query into a webhook alert rule: each
// window close POSTs a JSON payload (rule SQL, window boundary, columns,
// rows) to url. The returned stop function closes the CQ and waits for
// the delivery goroutine. Delivery is best-effort: failures count in
// streamrel_sysmon_alert_errors_total and the rule keeps running.
func (e *Engine) SubscribeAlert(sqlText, url string, httpClient *http.Client) (stop func(), err error) {
	cq, err := e.Subscribe(sqlText)
	if err != nil {
		return nil, err
	}
	sink := sysmon.NewWebhookSink(url, httpClient, e.reg)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			b, ok := cq.Next()
			if !ok {
				return
			}
			// Error already counted by the sink; the rule keeps firing.
			_ = sink.Deliver(sqlText, b.Close, cq.Columns, b.Rows)
		}
	}()
	return func() {
		cq.Close()
		<-done
	}, nil
}
