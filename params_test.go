package streamrel

import (
	"testing"
	"time"
)

func TestQueryArgs(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint, s varchar)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`)

	rows, err := e.QueryArgs(`SELECT s FROM t WHERE a = $1`, Int(2))
	if err != nil {
		t.Fatal(err)
	}
	expectData(t, rows, "two")

	rows, err = e.QueryArgs(`SELECT a FROM t WHERE a BETWEEN $1 AND $2 ORDER BY a`, Int(2), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	expectData(t, rows, "2", "3")

	// Reuse of the same placeholder.
	rows, err = e.QueryArgs(`SELECT count(*) FROM t WHERE a = $1 OR length(s) = $1`, Int(3))
	if err != nil {
		t.Fatal(err)
	}
	expectData(t, rows, "3") // a=3, plus 'one' and 'two' (length 3)
}

func TestExecArgs(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint, s varchar)`)
	if _, err := e.ExecArgs(`INSERT INTO t VALUES ($1, $2), ($3, $4)`,
		Int(1), String("x"), Int(2), String("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecArgs(`UPDATE t SET s = $1 WHERE a = $2`, String("z"), Int(1)); err != nil {
		t.Fatal(err)
	}
	expectData(t, mustQuery(t, e, `SELECT s FROM t ORDER BY a`), "z", "y")
	res, err := e.ExecArgs(`DELETE FROM t WHERE a < $1`, Int(10))
	if err != nil || res.RowsAffected != 2 {
		t.Fatalf("delete: %v %v", res, err)
	}
}

func TestSubscribeArgs(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.SubscribeArgs(`SELECT count(*) FROM s <ADVANCE '1 minute'> WHERE v >= $1`, Int(10))
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	base := MustTimestamp("2009-01-04 00:00:00")
	e.Append("s", Row{Int(5), Timestamp(base.Add(time.Second))})
	e.Append("s", Row{Int(15), Timestamp(base.Add(2 * time.Second))})
	e.AdvanceTime("s", base.Add(time.Minute))
	b, ok := cq.TryNext()
	if !ok || b.Rows[0][0].Int() != 1 {
		t.Fatalf("batch: %+v ok=%v", b, ok)
	}
}

func TestParamErrors(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE t (a bigint)`)
	if _, err := e.QueryArgs(`SELECT * FROM t WHERE a = $2`, Int(1)); err == nil {
		t.Fatal("out-of-range placeholder")
	}
	if _, err := e.QueryArgs(`SELECT * FROM t WHERE a = $1`, Int(1), Int(2)); err == nil {
		t.Fatal("unused trailing argument")
	}
	if _, err := e.Query(`SELECT * FROM t WHERE a = $1`); err == nil {
		t.Fatal("unbound parameter should error")
	}
	if _, err := e.Query(`SELECT $ FROM t`); err == nil {
		t.Fatal("bare $ should fail to lex")
	}
	if _, err := e.ExecArgs(`CREATE TABLE u (a bigint)`, Int(1)); err == nil {
		t.Fatal("DDL with args should error")
	}
}
