package streamrel

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// transcript renders a CQ's queued batches deterministically so fire
// sequences can be compared byte-for-byte.
func transcript(cq *CQ) string {
	var b strings.Builder
	for {
		batch, ok := cq.TryNext()
		if !ok {
			return b.String()
		}
		fmt.Fprintf(&b, "close=%s\n", batch.Close.UTC().Format(time.RFC3339Nano))
		for _, r := range batch.Rows {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
	}
}

// feedPlanShare pushes a deterministic workload: minutes of traffic over a
// few URL keys, then a heartbeat that closes the trailing windows.
func feedPlanShare(t *testing.T, e *Engine, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := MustTimestamp("2009-01-04 00:00:00")
	urls := []string{"/a", "/b", "/c", "/d"}
	for i := 0; i < 400; i++ {
		at := base.Add(time.Duration(i) * 3 * time.Second)
		row := Row{String(urls[rng.Intn(len(urls))]), Timestamp(at), Int(int64(rng.Intn(50)))}
		if err := e.Append("s", row); err != nil {
			t.Fatal(err)
		}
	}
	e.AdvanceTime("s", base.Add(25*time.Minute))
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanSharingTranscriptsIdentical: k identical CQs collapse into ONE
// plan-sharing group over ONE incrementally maintained state, and every
// subscriber's fire transcript is byte-identical — in the synchronous
// engine and under the work-stealing scheduler (run with -race). Closing
// one subscriber mid-stream must not disturb the others.
func TestPlanSharingTranscriptsIdentical(t *testing.T) {
	const k = 8
	const q = `SELECT url, count(*) AS n, sum(v) AS sv
		FROM s <VISIBLE '3 minutes' ADVANCE '1 minute'> GROUP BY url`

	var perMode []string // one reference transcript per mode
	for _, parallel := range []int{0, 4} {
		e, err := Open(Config{ParallelCQ: parallel})
		if err != nil {
			t.Fatal(err)
		}
		mustExec(t, e, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
		cqs := make([]*CQ, k)
		for i := range cqs {
			if cqs[i], err = e.Subscribe(q); err != nil {
				t.Fatal(err)
			}
			if !cqs[i].Incremental {
				t.Fatalf("parallel=%d cq %d: expected incremental (IVM) host", parallel, i)
			}
		}
		st := e.Stats()
		if st.PlanGroups != 1 || st.PlanSubscribers != k {
			t.Fatalf("parallel=%d: stats %+v", parallel, st)
		}

		feedPlanShare(t, e, 42)

		// One subscriber leaves; the survivors keep firing undisturbed.
		cqs[k-1].Close()
		closedAt := transcript(cqs[k-1])
		base := MustTimestamp("2009-01-04 00:00:00")
		e.AdvanceTime("s", base.Add(30*time.Minute))
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}

		ref := transcript(cqs[0])
		if ref == "" {
			t.Fatalf("parallel=%d: no fires recorded", parallel)
		}
		for i := 1; i < k-1; i++ {
			if got := transcript(cqs[i]); got != ref {
				t.Fatalf("parallel=%d: subscriber %d transcript differs from subscriber 0", parallel, i)
			}
		}
		if !strings.HasPrefix(ref, closedAt) || closedAt == ref {
			t.Fatalf("parallel=%d: closed subscriber should hold a strict prefix of the survivors' transcript", parallel)
		}
		if st := e.Stats(); st.PlanSubscribers != k-1 {
			t.Fatalf("parallel=%d: stats after close %+v", parallel, st)
		}
		perMode = append(perMode, ref)
		e.Close()
	}
	if perMode[0] != perMode[1] {
		t.Fatal("serial and work-stealing transcripts differ")
	}
}

// TestPlanSharingSubsumption: CQs that differ only in a residual WHERE
// over the group key (and in projection/ORDER BY) are subsumed into the
// same group — one shared state, one post stage per distinct shape — and
// each still answers exactly as if it ran alone.
func TestPlanSharingSubsumption(t *testing.T) {
	run := func(cfg Config) (full, filtered, ordered string, st RuntimeStats) {
		e, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		mustExec(t, e, `CREATE STREAM s (url varchar, at timestamp CQTIME USER, v bigint)`)
		base := `SELECT url, count(*) AS n FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url`
		cqFull, err := e.Subscribe(base)
		if err != nil {
			t.Fatal(err)
		}
		cqFiltered, err := e.Subscribe(`SELECT url, count(*) AS n FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'>
			WHERE url = '/a' GROUP BY url`)
		if err != nil {
			t.Fatal(err)
		}
		cqOrdered, err := e.Subscribe(base + ` ORDER BY n DESC, url`)
		if err != nil {
			t.Fatal(err)
		}
		feedPlanShare(t, e, 7)
		st = e.Stats()
		return transcript(cqFull), transcript(cqFiltered), transcript(cqOrdered), st
	}

	full, filtered, ordered, st := run(Config{})
	// The residual filter and the mirrored ORDER BY hoist into post
	// stages, so all three subscribe to one group.
	if st.PlanGroups != 1 || st.PlanSubscribers != 3 {
		t.Fatalf("stats with sharing: %+v", st)
	}
	soloFull, soloFiltered, soloOrdered, soloSt := run(Config{DisablePlanSharing: true})
	if soloSt.PlanGroups != 0 || soloSt.PlanSubscribers != 0 {
		t.Fatalf("stats without plan sharing: %+v", soloSt)
	}
	if full != soloFull {
		t.Error("shared full-group transcript differs from unshared run")
	}
	if filtered != soloFiltered {
		t.Error("subsumed (residual WHERE) transcript differs from unshared run")
	}
	if ordered != soloOrdered {
		t.Error("subsumed (ORDER BY) transcript differs from unshared run")
	}
	if filtered == full {
		t.Error("residual filter had no effect")
	}
}
