package streamrel

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentReadersWritersAndStreams hammers the engine from many
// goroutines at once: table writers, snapshot readers, stream producers,
// and a CQ consumer. Run with -race; correctness checks are at the end.
func TestConcurrentReadersWritersAndStreams(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE TABLE counters (worker bigint, n bigint)`)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()

	const (
		writers      = 4
		perWriter    = 50
		streamEvents = 400
	)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	// Table writers.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := e.Exec(fmt.Sprintf(`INSERT INTO counters VALUES (%d, %d)`, w, i)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	// Snapshot readers: results must always be internally consistent.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rows, err := e.Query(`SELECT count(*), coalesce(sum(n), 0) FROM counters`)
				if err != nil {
					errCh <- err
					return
				}
				_ = rows
			}
		}()
	}
	// One stream producer (stream order must be maintained by one
	// producer; that is the documented contract).
	wg.Add(1)
	go func() {
		defer wg.Done()
		base := MustTimestamp("2009-01-04 00:00:00")
		for i := 0; i < streamEvents; i++ {
			row := Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}
			if err := e.Append("s", row); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	rows := mustQuery(t, e, `SELECT count(*) FROM counters`)
	if got := rows.Data[0][0].Int(); got != writers*perWriter {
		t.Fatalf("lost writes: %d rows, want %d", got, writers*perWriter)
	}
	// Every window the CQ saw must count consecutive seconds (60 per full
	// window).
	total := 0
	for {
		b, ok := cq.TryNext()
		if !ok {
			break
		}
		total += int(b.Rows[0][0].Int())
	}
	if total == 0 || total > streamEvents {
		t.Fatalf("stream results inconsistent: %d counted", total)
	}
}

// TestConcurrentSubscribeUnsubscribe exercises CQ lifecycle races.
func TestConcurrentSubscribeUnsubscribe(t *testing.T) {
	e := openMem(t)
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	base := MustTimestamp("2009-01-04 00:00:00")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			row := Row{Int(int64(i)), Timestamp(base.Add(time.Duration(i) * time.Second))}
			if err := e.Append("s", row); err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cq, err := e.Subscribe(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
				if err != nil {
					t.Error(err)
					return
				}
				cq.TryNext()
				cq.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if st := e.Stats(); st.Pipelines != 0 {
		t.Fatalf("leaked pipelines: %+v", st)
	}
}
