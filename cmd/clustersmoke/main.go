// Command clustersmoke is an end-to-end smoke test for horizontal
// scale-out: it builds streamreld, boots two shard servers, a shard
// router, a replica of shard 0, and a single-node reference daemon as
// separate processes, drives the same keyed workload through the router
// and the reference, and asserts the router's scatter-gathered query
// results and merged CQ windows match the single-node run exactly (after
// canonical row ordering, which the router guarantees and the reference
// is sorted into). It then kills one shard and asserts the router
// degrades to flagged partial results instead of failing.
//
// Run it via `make cluster-smoke`.
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"streamrel/client"
	"streamrel/internal/types"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustersmoke: "+format+"\n", args...)
	os.Exit(1)
}

// startDaemon launches a streamreld process and returns its bound address
// (parsed from the "streamreld listening on" banner) plus a stop func.
func startDaemon(bin string, args ...string) (string, func(), error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	sc := bufio.NewScanner(out)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if strings.HasPrefix(line, "streamreld listening on ") {
				fields := strings.Fields(line)
				select {
				case addrCh <- fields[3]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, stop, nil
	case <-time.After(15 * time.Second):
		stop()
		return "", nil, fmt.Errorf("daemon did not announce its address")
	}
}

// canon renders rows in canonical order as one comparable string — the
// shard router already emits canonical order; the single-node reference
// is sorted into it here.
func canon(rows []client.Row) string {
	cp := make([]client.Row, len(rows))
	copy(cp, rows)
	sort.SliceStable(cp, func(i, j int) bool { return types.CompareRows(cp[i], cp[j]) < 0 })
	var b strings.Builder
	for _, r := range cp {
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func nextBatch(who string, sub *client.Subscription) client.Batch {
	select {
	case b, ok := <-sub.C:
		if !ok {
			fatalf("%s subscription closed", who)
		}
		return b
	case <-time.After(15 * time.Second):
		fatalf("%s: timed out waiting for a CQ window", who)
	}
	return client.Batch{}
}

var ddl = []string{
	`CREATE STREAM s (k varchar(20), v bigint, at timestamp CQTIME USER) PARTITION BY k`,
	`CREATE STREAM s_now AS SELECT k, count(*) AS n, sum(v) AS sv, cq_close(*) AS stime
		FROM s <ADVANCE '1 minute'> GROUP BY k`,
	`CREATE TABLE s_archive (k varchar(20), n bigint, sv bigint, stime timestamp)`,
	`CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`,
}

func main() {
	tmp, err := os.MkdirTemp("", "clustersmoke")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "streamreld")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/streamreld").CombinedOutput(); err != nil {
		fatalf("build streamreld: %v\n%s", err, out)
	}

	// Two shards, a replica following shard 0, the router over both
	// shards, and an unsharded reference node.
	shard0, stop0, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "s0"))
	if err != nil {
		fatalf("start shard 0: %v", err)
	}
	defer stop0()
	shard1, stop1, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "s1"))
	if err != nil {
		fatalf("start shard 1: %v", err)
	}
	defer stop1()
	repAddr, stopRep, err := startDaemon(bin, "-addr", "127.0.0.1:0",
		"-dir", filepath.Join(tmp, "rep"), "-replica-of", shard0)
	if err != nil {
		fatalf("start replica: %v", err)
	}
	defer stopRep()
	routerAddr, stopRouter, err := startDaemon(bin, "-addr", "127.0.0.1:0",
		"-shards", shard0+","+shard1)
	if err != nil {
		fatalf("start router: %v", err)
	}
	defer stopRouter()
	refAddr, stopRef, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "ref"))
	if err != nil {
		fatalf("start reference node: %v", err)
	}
	defer stopRef()

	router, err := client.Dial(routerAddr)
	if err != nil {
		fatalf("dial router: %v", err)
	}
	defer router.Close()
	ref, err := client.Dial(refAddr)
	if err != nil {
		fatalf("dial reference: %v", err)
	}
	defer ref.Close()

	// Identical DDL through both paths; the router broadcasts it.
	for _, stmt := range ddl {
		if _, err := router.Exec(stmt); err != nil {
			fatalf("router %s: %v", stmt, err)
		}
		if _, err := ref.Exec(stmt); err != nil {
			fatalf("ref %s: %v", stmt, err)
		}
	}

	rsub, err := router.Subscribe(`SELECT k, count(*) AS n FROM s <ADVANCE '1 minute'> GROUP BY k`)
	if err != nil {
		fatalf("router subscribe: %v", err)
	}
	fsub, err := ref.Subscribe(`SELECT k, count(*) AS n FROM s <ADVANCE '1 minute'> GROUP BY k`)
	if err != nil {
		fatalf("ref subscribe: %v", err)
	}

	// The same keyed workload into both paths: 6 keys, 120 rows over two
	// windows.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	ingest := func(c *client.Client, who string, lo, hi int) {
		var rows []client.Row
		for i := lo; i < hi; i++ {
			rows = append(rows, client.Row{
				types.NewString(keys[i%len(keys)]),
				types.NewInt(int64(i)),
				types.NewTimestamp(base.Add(time.Duration(i) * time.Second)),
			})
		}
		if err := c.Append("s", rows...); err != nil {
			fatalf("%s append: %v", who, err)
		}
	}
	for w := 0; w < 2; w++ {
		ingest(router, "router", w*60, w*60+60)
		ingest(ref, "ref", w*60, w*60+60)
		edge := base.Add(time.Duration(w+1) * time.Minute)
		if err := router.Advance("s", edge); err != nil {
			fatalf("router advance: %v", err)
		}
		if err := ref.Advance("s", edge); err != nil {
			fatalf("ref advance: %v", err)
		}
	}

	// CQ merge output must match the single-node run window for window.
	for w := 0; w < 2; w++ {
		rb, fb := nextBatch("router", rsub), nextBatch("ref", fsub)
		if !rb.Close.Equal(fb.Close) {
			fatalf("window %d close mismatch: router %v vs ref %v", w, rb.Close, fb.Close)
		}
		if rb.Partial {
			fatalf("window %d unexpectedly partial", w)
		}
		if rc, fc := canon(rb.Rows), canon(fb.Rows); rc != fc {
			fatalf("window %d CQ output diverged:\nrouter:\n%sref:\n%s", w, rc, fc)
		}
	}

	// Scatter-gathered snapshot queries must match the single-node run.
	for _, q := range []string{
		`SELECT count(*), sum(n), sum(sv), min(stime), max(stime) FROM s_archive`,
		`SELECT k, sum(n) FROM s_archive GROUP BY k`,
		// avg is scattered as SUM+COUNT and recombined by the router: the
		// merged value must be the global average the single node computes,
		// not an average of per-shard averages.
		`SELECT avg(sv) FROM s_archive`,
		`SELECT k, avg(sv) AS m, count(*) FROM s_archive GROUP BY k`,
	} {
		rres, err := router.Query(q)
		if err != nil {
			fatalf("router %s: %v", q, err)
		}
		if rres.Partial {
			fatalf("router %s: unexpectedly partial", q)
		}
		fres, err := ref.Query(q)
		if err != nil {
			fatalf("ref %s: %v", q, err)
		}
		if rc, fc := canon(rres.Data), canon(fres.Data); rc != fc {
			fatalf("%s diverged:\nrouter:\n%sref:\n%s", q, rc, fc)
		}
	}

	// Both shards must actually hold data (the split worked).
	s0c, err := client.Dial(shard0)
	if err != nil {
		fatalf("dial shard 0: %v", err)
	}
	defer s0c.Close()
	res, err := s0c.Query(`SELECT count(*) FROM s_archive`)
	if err != nil {
		fatalf("shard 0 query: %v", err)
	}
	shard0Rows := res.Data[0][0].Int()
	if shard0Rows == 0 || shard0Rows >= 12 { // 6 keys × 2 windows total
		fatalf("shard 0 holds %d of 12 archive rows — keys did not split", shard0Rows)
	}

	// The per-shard replica (plain internal/repl, no router awareness)
	// must converge on shard 0's slice.
	rep, err := client.Dial(repAddr)
	if err != nil {
		fatalf("dial replica: %v", err)
	}
	defer rep.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		res, err := rep.Query(`SELECT count(*) FROM s_archive`)
		if err == nil && len(res.Data) == 1 && res.Data[0][0].Int() == shard0Rows {
			break
		}
		if time.Now().After(deadline) {
			got := "?"
			if err == nil && len(res.Data) == 1 {
				got = fmt.Sprint(res.Data[0][0].Int())
			}
			fatalf("replica did not converge on shard 0: %s/%d rows (err=%v)", got, shard0Rows, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Kill shard 1: scatter queries must degrade to flagged partial
	// results, not errors.
	stop1()
	deadline = time.Now().Add(20 * time.Second)
	for {
		res, err := router.Query(`SELECT count(*) FROM s_archive`)
		if err == nil && res.Partial {
			if res.Data[0][0].Int() != shard0Rows {
				fatalf("partial count = %d, want shard 0's %d", res.Data[0][0].Int(), shard0Rows)
			}
			break
		}
		if time.Now().After(deadline) {
			fatalf("router never flagged a partial result after shard loss (err=%v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("clustersmoke: OK — 2 shards matched single-node byte for byte, replica converged on %d rows, shard loss degraded to partial\n", shard0Rows)
}
