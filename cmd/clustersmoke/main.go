// Command clustersmoke is an end-to-end smoke test for horizontal
// scale-out: it builds streamreld, boots two shard servers, a shard
// router, a replica of shard 0, and a single-node reference daemon as
// separate processes, drives the same keyed workload through the router
// and the reference, and asserts the router's scatter-gathered query
// results and merged CQ windows match the single-node run exactly (after
// canonical row ordering, which the router guarantees and the reference
// is sorted into). It then kills one shard and asserts the router
// degrades to flagged partial results instead of failing.
//
// Run it via `make cluster-smoke`.
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"streamrel/client"
	"streamrel/internal/metrics"
	"streamrel/internal/types"
)

// httpGet fetches a probe/scrape URL, returning status, body and headers
// (status 0 on transport error).
func httpGet(url string) (int, string, http.Header) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err.Error(), http.Header{}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), resp.Header
}

// scrapeValues fetches one /metrics endpoint and returns series-ID → value,
// failing the smoke on any HTTP or exposition-syntax error.
func scrapeValues(url string) map[string]float64 {
	status, body, _ := httpGet(url)
	if status != 200 {
		fatalf("GET %s: status %d (%s)", url, status, body)
	}
	parsed, err := metrics.ParseExposition(strings.NewReader(body))
	if err != nil {
		fatalf("GET %s: invalid exposition: %v", url, err)
	}
	out := make(map[string]float64, len(parsed))
	for i := range parsed {
		out[parsed[i].ID()] = parsed[i].Value
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "clustersmoke: "+format+"\n", args...)
	os.Exit(1)
}

// daemon is one launched streamreld process: its protocol address, its
// debug/metrics base URL (when started with -metrics-addr), and a stop
// func.
type daemon struct {
	addr       string
	metricsURL string // "http://host:port", empty without -metrics-addr
	stop       func()
}

// startDaemon launches a streamreld process and returns its bound
// addresses, parsed from the "streamreld listening on" and "metrics on"
// banners (the latter only awaited when -metrics-addr is among args).
func startDaemon(bin string, args ...string) (*daemon, error) {
	wantMetrics := false
	for _, a := range args {
		if a == "-metrics-addr" {
			wantMetrics = true
		}
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	sc := bufio.NewScanner(out)
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if strings.HasPrefix(line, "streamreld listening on ") {
				fields := strings.Fields(line)
				select {
				case addrCh <- fields[3]:
				default:
				}
			}
			if strings.HasPrefix(line, "metrics on http://") {
				u := strings.TrimSuffix(strings.Fields(line)[2], "/metrics")
				select {
				case metricsCh <- u:
				default:
				}
			}
		}
	}()
	d := &daemon{stop: stop}
	deadline := time.After(15 * time.Second)
	select {
	case d.addr = <-addrCh:
	case <-deadline:
		stop()
		return nil, fmt.Errorf("daemon did not announce its address")
	}
	if wantMetrics {
		select {
		case d.metricsURL = <-metricsCh:
		case <-deadline:
			stop()
			return nil, fmt.Errorf("daemon did not announce its metrics address")
		}
	}
	return d, nil
}

// canon renders rows in canonical order as one comparable string — the
// shard router already emits canonical order; the single-node reference
// is sorted into it here.
func canon(rows []client.Row) string {
	cp := make([]client.Row, len(rows))
	copy(cp, rows)
	sort.SliceStable(cp, func(i, j int) bool { return types.CompareRows(cp[i], cp[j]) < 0 })
	var b strings.Builder
	for _, r := range cp {
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func nextBatch(who string, sub *client.Subscription) client.Batch {
	select {
	case b, ok := <-sub.C:
		if !ok {
			fatalf("%s subscription closed", who)
		}
		return b
	case <-time.After(15 * time.Second):
		fatalf("%s: timed out waiting for a CQ window", who)
	}
	return client.Batch{}
}

var ddl = []string{
	`CREATE STREAM s (k varchar(20), v bigint, at timestamp CQTIME USER) PARTITION BY k`,
	`CREATE STREAM s_now AS SELECT k, count(*) AS n, sum(v) AS sv, cq_close(*) AS stime
		FROM s <ADVANCE '1 minute'> GROUP BY k`,
	`CREATE TABLE s_archive (k varchar(20), n bigint, sv bigint, stime timestamp)`,
	`CREATE CHANNEL s_ch FROM s_now INTO s_archive APPEND`,
}

func main() {
	tmp, err := os.MkdirTemp("", "clustersmoke")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "streamreld")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/streamreld").CombinedOutput(); err != nil {
		fatalf("build streamreld: %v\n%s", err, out)
	}

	// Two shards, a replica following shard 0, the router over both
	// shards, and an unsharded reference node. Shards and router also
	// expose the observability plane (localhost-only — it has no auth).
	s0d, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "s0"),
		"-metrics-addr", "127.0.0.1:0")
	if err != nil {
		fatalf("start shard 0: %v", err)
	}
	defer s0d.stop()
	shard0 := s0d.addr
	s1d, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "s1"),
		"-metrics-addr", "127.0.0.1:0")
	if err != nil {
		fatalf("start shard 1: %v", err)
	}
	defer s1d.stop()
	shard1, stop1 := s1d.addr, s1d.stop
	repd, err := startDaemon(bin, "-addr", "127.0.0.1:0",
		"-dir", filepath.Join(tmp, "rep"), "-replica-of", shard0)
	if err != nil {
		fatalf("start replica: %v", err)
	}
	defer repd.stop()
	repAddr := repd.addr
	routerd, err := startDaemon(bin, "-addr", "127.0.0.1:0",
		"-shards", shard0+","+shard1, "-metrics-addr", "127.0.0.1:0")
	if err != nil {
		fatalf("start router: %v", err)
	}
	defer routerd.stop()
	refd, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "ref"))
	if err != nil {
		fatalf("start reference node: %v", err)
	}
	defer refd.stop()

	router, err := client.Dial(routerd.addr)
	if err != nil {
		fatalf("dial router: %v", err)
	}
	defer router.Close()
	ref, err := client.Dial(refd.addr)
	if err != nil {
		fatalf("dial reference: %v", err)
	}
	defer ref.Close()

	// Identical DDL through both paths; the router broadcasts it.
	for _, stmt := range ddl {
		if _, err := router.Exec(stmt); err != nil {
			fatalf("router %s: %v", stmt, err)
		}
		if _, err := ref.Exec(stmt); err != nil {
			fatalf("ref %s: %v", stmt, err)
		}
	}

	rsub, err := router.Subscribe(`SELECT k, count(*) AS n FROM s <ADVANCE '1 minute'> GROUP BY k`)
	if err != nil {
		fatalf("router subscribe: %v", err)
	}
	fsub, err := ref.Subscribe(`SELECT k, count(*) AS n FROM s <ADVANCE '1 minute'> GROUP BY k`)
	if err != nil {
		fatalf("ref subscribe: %v", err)
	}

	// The same keyed workload into both paths: 6 keys, 120 rows over two
	// windows.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	ingest := func(c *client.Client, who string, lo, hi int) {
		var rows []client.Row
		for i := lo; i < hi; i++ {
			rows = append(rows, client.Row{
				types.NewString(keys[i%len(keys)]),
				types.NewInt(int64(i)),
				types.NewTimestamp(base.Add(time.Duration(i) * time.Second)),
			})
		}
		if err := c.Append("s", rows...); err != nil {
			fatalf("%s append: %v", who, err)
		}
	}
	for w := 0; w < 2; w++ {
		ingest(router, "router", w*60, w*60+60)
		ingest(ref, "ref", w*60, w*60+60)
		edge := base.Add(time.Duration(w+1) * time.Minute)
		if err := router.Advance("s", edge); err != nil {
			fatalf("router advance: %v", err)
		}
		if err := ref.Advance("s", edge); err != nil {
			fatalf("ref advance: %v", err)
		}
	}

	// CQ merge output must match the single-node run window for window.
	for w := 0; w < 2; w++ {
		rb, fb := nextBatch("router", rsub), nextBatch("ref", fsub)
		if !rb.Close.Equal(fb.Close) {
			fatalf("window %d close mismatch: router %v vs ref %v", w, rb.Close, fb.Close)
		}
		if rb.Partial {
			fatalf("window %d unexpectedly partial", w)
		}
		if rc, fc := canon(rb.Rows), canon(fb.Rows); rc != fc {
			fatalf("window %d CQ output diverged:\nrouter:\n%sref:\n%s", w, rc, fc)
		}
	}

	// Scatter-gathered snapshot queries must match the single-node run.
	for _, q := range []string{
		`SELECT count(*), sum(n), sum(sv), min(stime), max(stime) FROM s_archive`,
		`SELECT k, sum(n) FROM s_archive GROUP BY k`,
		// avg is scattered as SUM+COUNT and recombined by the router: the
		// merged value must be the global average the single node computes,
		// not an average of per-shard averages.
		`SELECT avg(sv) FROM s_archive`,
		`SELECT k, avg(sv) AS m, count(*) FROM s_archive GROUP BY k`,
	} {
		rres, err := router.Query(q)
		if err != nil {
			fatalf("router %s: %v", q, err)
		}
		if rres.Partial {
			fatalf("router %s: unexpectedly partial", q)
		}
		fres, err := ref.Query(q)
		if err != nil {
			fatalf("ref %s: %v", q, err)
		}
		if rc, fc := canon(rres.Data), canon(fres.Data); rc != fc {
			fatalf("%s diverged:\nrouter:\n%sref:\n%s", q, rc, fc)
		}
	}

	// Both shards must actually hold data (the split worked).
	s0c, err := client.Dial(shard0)
	if err != nil {
		fatalf("dial shard 0: %v", err)
	}
	defer s0c.Close()
	res, err := s0c.Query(`SELECT count(*) FROM s_archive`)
	if err != nil {
		fatalf("shard 0 query: %v", err)
	}
	shard0Rows := res.Data[0][0].Int()
	if shard0Rows == 0 || shard0Rows >= 12 { // 6 keys × 2 windows total
		fatalf("shard 0 holds %d of 12 archive rows — keys did not split", shard0Rows)
	}

	// The per-shard replica (plain internal/repl, no router awareness)
	// must converge on shard 0's slice.
	rep, err := client.Dial(repAddr)
	if err != nil {
		fatalf("dial replica: %v", err)
	}
	defer rep.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		res, err := rep.Query(`SELECT count(*) FROM s_archive`)
		if err == nil && len(res.Data) == 1 && res.Data[0][0].Int() == shard0Rows {
			break
		}
		if time.Now().After(deadline) {
			got := "?"
			if err == nil && len(res.Data) == 1 {
				got = fmt.Sprint(res.Data[0][0].Int())
			}
			fatalf("replica did not converge on shard 0: %s/%d rows (err=%v)", got, shard0Rows, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Observability plane: probes answer on shards and router, and the
	// router's federated /metrics is exactly the union of the shards'
	// registries with shard-labeled series (plus the router's own).
	for _, probe := range []struct{ who, url string }{
		{"shard 0 healthz", s0d.metricsURL + "/healthz"},
		{"shard 0 readyz", s0d.metricsURL + "/readyz"},
		{"router healthz", routerd.metricsURL + "/healthz"},
		{"router readyz", routerd.metricsURL + "/readyz"},
	} {
		status, _, _ := httpGet(probe.url)
		if status != 200 {
			fatalf("%s returned %d, want 200", probe.who, status)
		}
	}
	s0m := scrapeValues(s0d.metricsURL + "/metrics")
	s1m := scrapeValues(s1d.metricsURL + "/metrics")
	status, fedBody, fedHdr := httpGet(routerd.metricsURL + "/metrics")
	if status != 200 {
		fatalf("federated /metrics returned %d", status)
	}
	if fedHdr.Get("X-Streamrel-Partial") == "true" {
		fatalf("federated /metrics flagged partial with every shard up")
	}
	fed, err := metrics.ParseExposition(strings.NewReader(fedBody))
	if err != nil {
		fatalf("federated /metrics is not valid exposition: %v", err)
	}
	fedByID := map[string]float64{}
	sawRouterSeries := false
	for i := range fed {
		sh := fed[i].Labels["shard"]
		if sh == "" {
			fatalf("federated series %s has no shard label", fed[i].ID())
		}
		if sh == "router" {
			sawRouterSeries = true
		}
		fedByID[fed[i].ID()] = fed[i].Value
	}
	if !sawRouterSeries {
		fatalf(`federated /metrics has no shard="router" series`)
	}
	// The federated value of a stable per-shard counter must equal the
	// value that shard's own /metrics reports, and the shard-labeled
	// slices must add up to the whole workload.
	const rowsSeries = `streamrel_stream_rows_total{stream="s"}`
	for i, local := range []map[string]float64{s0m, s1m} {
		want, ok := local[rowsSeries]
		if !ok {
			fatalf("shard %d /metrics missing %s", i, rowsSeries)
		}
		fedID := fmt.Sprintf(`streamrel_stream_rows_total{shard="%d",stream="s"}`, i)
		if got, ok := fedByID[fedID]; !ok || got != want {
			fatalf("federated %s = %v (ok=%v), shard's own scrape says %v", fedID, got, ok, want)
		}
	}
	if total := fedByID[`streamrel_stream_rows_total{shard="0",stream="s"}`] +
		fedByID[`streamrel_stream_rows_total{shard="1",stream="s"}`]; total != 120 {
		fatalf("federated shard slices of %s sum to %v, want 120", rowsSeries, total)
	}

	// Kill shard 1: scatter queries must degrade to flagged partial
	// results, not errors.
	stop1()
	deadline = time.Now().Add(20 * time.Second)
	for {
		res, err := router.Query(`SELECT count(*) FROM s_archive`)
		if err == nil && res.Partial {
			if res.Data[0][0].Int() != shard0Rows {
				fatalf("partial count = %d, want shard 0's %d", res.Data[0][0].Int(), shard0Rows)
			}
			break
		}
		if time.Now().After(deadline) {
			fatalf("router never flagged a partial result after shard loss (err=%v)", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// …and the observability plane must agree: router /readyz degrades to
	// 503 naming the dead shard, federated /metrics flags partial.
	deadline = time.Now().Add(20 * time.Second)
	for {
		readyStatus, readyBody, _ := httpGet(routerd.metricsURL + "/readyz")
		fedStatus, _, hdr := httpGet(routerd.metricsURL + "/metrics")
		if readyStatus == 503 && fedStatus == 200 && hdr.Get("X-Streamrel-Partial") == "true" {
			if !strings.Contains(readyBody, "degraded") {
				fatalf("router /readyz 503 body %q does not say degraded", readyBody)
			}
			break
		}
		if time.Now().After(deadline) {
			fatalf("router probes never degraded after shard loss (readyz=%d, partial=%q)",
				readyStatus, hdr.Get("X-Streamrel-Partial"))
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("clustersmoke: OK — 2 shards matched single-node byte for byte, replica converged on %d rows, shard loss degraded to partial\n", shard0Rows)
}
