// Command replsmoke is an end-to-end smoke test for replication: it
// builds streamreld, boots a primary and a replica as separate processes,
// ingests through the primary, and asserts the replica converges and
// reports lag metrics. Exit status 0 means the two-node pipeline works.
//
// Run it via `make repl-smoke`.
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"streamrel"
	"streamrel/client"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replsmoke: "+format+"\n", args...)
	os.Exit(1)
}

// startDaemon launches a streamreld process and returns its bound address
// (parsed from the "streamreld listening on" banner) plus a stop func.
func startDaemon(bin string, args ...string) (string, func(), error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, err
	}
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	stop := func() {
		cmd.Process.Kill()
		cmd.Wait()
	}
	sc := bufio.NewScanner(out)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if strings.HasPrefix(line, "streamreld listening on ") {
				fields := strings.Fields(line)
				select {
				case addrCh <- fields[3]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, stop, nil
	case <-time.After(15 * time.Second):
		stop()
		return "", nil, fmt.Errorf("daemon did not announce its address")
	}
}

func main() {
	tmp, err := os.MkdirTemp("", "replsmoke")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "streamreld")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/streamreld").CombinedOutput(); err != nil {
		fatalf("build streamreld: %v\n%s", err, out)
	}

	primAddr, stopPrim, err := startDaemon(bin, "-addr", "127.0.0.1:0", "-dir", filepath.Join(tmp, "prim"))
	if err != nil {
		fatalf("start primary: %v", err)
	}
	defer stopPrim()
	repAddr, stopRep, err := startDaemon(bin, "-addr", "127.0.0.1:0",
		"-dir", filepath.Join(tmp, "rep"), "-replica-of", primAddr)
	if err != nil {
		fatalf("start replica: %v", err)
	}
	defer stopRep()

	prim, err := client.Dial(primAddr)
	if err != nil {
		fatalf("dial primary: %v", err)
	}
	defer prim.Close()
	rep, err := client.Dial(repAddr)
	if err != nil {
		fatalf("dial replica: %v", err)
	}
	defer rep.Close()

	for _, stmt := range []string{
		`CREATE TABLE kv (k bigint, v varchar)`,
		`CREATE STREAM s (v bigint, at timestamp CQTIME USER)`,
	} {
		if _, err := prim.Exec(stmt); err != nil {
			fatalf("%s: %v", stmt, err)
		}
	}
	const rows = 500
	for i := 0; i < rows; i++ {
		if _, err := prim.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, i, i)); err != nil {
			fatalf("insert: %v", err)
		}
	}
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 100; i++ {
		if err := prim.Append("s", client.Row{streamrel.Int(int64(i)), streamrel.Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			fatalf("append: %v", err)
		}
	}

	// Converge: the replica must serve the primary's rows read-only.
	deadline := time.Now().Add(20 * time.Second)
	for {
		res, err := rep.Query(`SELECT count(*) FROM kv`)
		if err == nil && len(res.Data) == 1 && res.Data[0][0].Int() == rows {
			break
		}
		if time.Now().After(deadline) {
			got := "?"
			if err == nil && len(res.Data) == 1 {
				got = fmt.Sprint(res.Data[0][0].Int())
			}
			fatalf("replica did not converge: %s/%d rows (err=%v)", got, rows, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Writes must be rejected on the replica.
	if _, err := rep.Exec(`INSERT INTO kv VALUES (999, 'no')`); err == nil {
		fatalf("replica accepted a write")
	}

	// Lag metrics must be exported and settled.
	stats, err := rep.Stats()
	if err != nil {
		fatalf("stats: %v", err)
	}
	seen := map[string]float64{}
	for _, r := range stats.Data {
		seen[r[0].Str()] = r[1].Float()
	}
	for _, m := range []string{"streamrel_repl_lag_lsn", "streamrel_repl_last_applied_lsn", "streamrel_repl_frames_applied_total"} {
		if _, ok := seen[m]; !ok {
			fatalf("replica stats missing %s", m)
		}
	}
	if seen["streamrel_repl_last_applied_lsn"] == 0 {
		fatalf("replica applied nothing")
	}

	fmt.Printf("replsmoke: OK — %d rows converged, applied lsn %.0f, lag %.0f\n",
		rows, seen["streamrel_repl_last_applied_lsn"], seen["streamrel_repl_lag_lsn"])
}
