// Command streamrel is an interactive SQL shell for the stream-relational
// engine — embedded (default) or connected to a streamreld server.
//
// Meta-commands:
//
//	\q                  quit
//	\watch <select>     start a continuous query printing batches as they close
//	\unwatch            stop all continuous queries
//	\stats              runtime counters (pipelines, plan sharing, scheduler)
//	\trace              completed trace spans (sampled end-to-end event traces)
//	\sys                list the engine's sys.* telemetry streams
//	\sys <stream>       watch a sys.* stream (5-second tumbling window)
//	\help               this text
//
// Usage:
//
//	streamrel [-dir data/] [-f script.sql] [-batch]
//	streamrel -connect 127.0.0.1:7475
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamrel"
	"streamrel/client"
)

func main() {
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	file := flag.String("f", "", "execute a SQL script before the prompt")
	batch := flag.Bool("batch", false, "exit after executing -f")
	connect := flag.String("connect", "", "connect to a streamreld server instead of embedding an engine")
	flag.Parse()

	var be backend
	if *connect != "" {
		c, err := client.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		be = &remoteBackend{c: c}
	} else {
		// The embedded shell runs sysmon so \sys works out of the box.
		eng, err := streamrel.Open(streamrel.Config{Dir: *dir, SysMonInterval: time.Second})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		be = &localBackend{eng: eng}
	}
	defer be.close()

	sh := &shell{be: be, out: os.Stdout}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sh.runScript(string(data)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *batch {
			return
		}
	}
	sh.repl(os.Stdin)
}

type shell struct {
	be      backend
	out     *os.File
	watches []*watcher
}

func (sh *shell) repl(in *os.File) {
	fmt.Fprintln(sh.out, "streamrel — stream-relational SQL (Continuous Analytics, CIDR 2009). \\help for help.")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "streamrel> "
	for {
		fmt.Fprint(sh.out, prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !sh.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			sh.execute(buf.String())
			buf.Reset()
			prompt = "streamrel> "
		} else if buf.Len() > 0 {
			prompt = "      ...> "
		}
	}
}

// meta handles backslash commands; it returns false to quit.
func (sh *shell) meta(cmd string) bool {
	switch {
	case cmd == "\\q" || cmd == "\\quit":
		return false
	case cmd == "\\help":
		fmt.Fprintln(sh.out, `\q quit · \watch <select> start CQ · \unwatch stop CQs · \stats counters · \trace spans · \sys [stream] telemetry`)
	case cmd == "\\stats":
		fmt.Fprintln(sh.out, sh.be.stats())
	case cmd == "\\trace":
		fmt.Fprintln(sh.out, sh.be.traces())
	case cmd == "\\unwatch":
		for _, w := range sh.watches {
			w.stop()
		}
		fmt.Fprintf(sh.out, "stopped %d continuous queries\n", len(sh.watches))
		sh.watches = nil
	case strings.HasPrefix(cmd, "\\watch "):
		sh.startWatch(strings.TrimPrefix(cmd, "\\watch "))
	case cmd == "\\sys":
		fmt.Fprintln(sh.out, `sys.* telemetry streams (engine-created, ephemeral, CQTIME SYSTEM):
  sys.metrics     every registry series per snapshot (ts, name, labels, kind, value)
  sys.pipelines   per-pipeline counters (source, windows_fired, rows_seen, queue_depth, mode)
  sys.slow_fires  slow window fires from the trace ring
  sys.repl        replication role, LSN and lag
\sys <stream> tails one; a CQ over them is an alerting rule, e.g.
  \watch SELECT name, max(value) FROM sys.metrics <ADVANCE '5 seconds'> GROUP BY name`)
	case strings.HasPrefix(cmd, "\\sys "):
		name := strings.TrimSpace(strings.TrimPrefix(cmd, "\\sys "))
		if !strings.HasPrefix(name, "sys.") {
			name = "sys." + name
		}
		sh.startWatch(fmt.Sprintf("SELECT * FROM %s <ADVANCE '5 seconds'>", name))
	default:
		fmt.Fprintln(sh.out, "unknown meta-command; \\help for help")
	}
	return true
}

// startWatch starts a continuous query and prints batches as they close.
func (sh *shell) startWatch(sqlText string) {
	w, err := sh.be.watch(sqlText)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	sh.watches = append(sh.watches, w)
	go func() {
		for {
			close, rows, ok := w.next()
			if !ok {
				return
			}
			fmt.Fprintf(sh.out, "\n-- window closed %s (%d rows)\n%s\n",
				close.Format("2006-01-02 15:04:05"), len(rows), w.header)
			for _, r := range rows {
				fmt.Fprintln(sh.out, r)
			}
		}
	}()
	fmt.Fprintln(sh.out, "watching; results print as windows close")
}

func (sh *shell) execute(sqlText string) {
	trimmed := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sqlText), ";"))
	if trimmed == "" {
		return
	}
	if strings.HasPrefix(strings.ToUpper(trimmed), "SELECT") {
		res, err := sh.be.query(trimmed)
		if err != nil {
			if strings.Contains(err.Error(), "never terminates") {
				fmt.Fprintln(sh.out, "this is a continuous query; start it with \\watch <select>")
				return
			}
			fmt.Fprintln(sh.out, "error:", err)
			return
		}
		sh.print(res)
		return
	}
	res, err := sh.be.exec(trimmed)
	if err != nil {
		fmt.Fprintln(sh.out, "error:", err)
		return
	}
	if res.header != "" {
		sh.print(res)
		return
	}
	fmt.Fprintf(sh.out, "ok (%d rows affected)\n", res.affected)
}

// runScript executes a semicolon-separated script statement by statement
// so it works against both backends.
func (sh *shell) runScript(script string) error {
	for _, stmt := range splitScript(script) {
		upper := strings.ToUpper(strings.TrimSpace(stmt))
		if upper == "" {
			continue
		}
		var err error
		if strings.HasPrefix(upper, "SELECT") {
			_, err = sh.be.query(stmt)
		} else {
			_, err = sh.be.exec(stmt)
		}
		if err != nil {
			return fmt.Errorf("%q: %w", stmt, err)
		}
	}
	return nil
}

// splitScript splits on semicolons outside of quotes — adequate for
// scripts this shell feeds to the engine statement by statement.
func splitScript(script string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(script); i++ {
		c := script[i]
		switch {
		case c == '\'':
			inStr = !inStr
			b.WriteByte(c)
		case c == ';' && !inStr:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if strings.TrimSpace(b.String()) != "" {
		out = append(out, b.String())
	}
	return out
}

func (sh *shell) print(res *result) {
	fmt.Fprintln(sh.out, res.header)
	for _, r := range res.rows {
		fmt.Fprintln(sh.out, r)
	}
	fmt.Fprintf(sh.out, "(%d rows)\n", len(res.rows))
}
