package main

import (
	"fmt"
	"strings"
	"time"

	"streamrel"
	"streamrel/client"
)

// result is what the shell prints: a header line and formatted rows.
type result struct {
	header   string
	rows     []string
	affected int
}

// watcher is a running continuous query, backend-agnostic.
type watcher struct {
	header string
	next   func() (time.Time, []string, bool)
	stop   func()
}

// backend abstracts a local engine vs a remote server connection.
type backend interface {
	exec(sql string) (*result, error)
	query(sql string) (*result, error)
	watch(sql string) (*watcher, error)
	stats() string
	traces() string
	close()
}

// formatSpan renders one trace span the way both backends print it.
func formatSpan(traceID, stage, stream string, pipe int64, start time.Time, dur time.Duration, rows int, slow bool) string {
	mark := ""
	if slow {
		mark = " SLOW"
	}
	where := stream
	if pipe != 0 {
		where = fmt.Sprintf("%s/%d", stream, pipe)
	}
	return fmt.Sprintf("%s %-13s %-20s %s %10s rows=%d%s",
		traceID, stage, where, start.UTC().Format("15:04:05.000000"), dur, rows, mark)
}

// ------------------------------------------------------------- local

type localBackend struct{ eng *streamrel.Engine }

func (b *localBackend) exec(sqlText string) (*result, error) {
	res, err := b.eng.Exec(sqlText)
	if err != nil {
		return nil, err
	}
	out := &result{affected: res.RowsAffected}
	if res.Rows != nil {
		out.header = header(res.Rows.Columns.Names())
		for _, r := range res.Rows.Data {
			out.rows = append(out.rows, r.String())
		}
	}
	return out, nil
}

func (b *localBackend) query(sqlText string) (*result, error) {
	rows, err := b.eng.Query(sqlText)
	if err != nil {
		return nil, err
	}
	out := &result{header: header(rows.Columns.Names())}
	for _, r := range rows.Data {
		out.rows = append(out.rows, r.String())
	}
	return out, nil
}

func (b *localBackend) watch(sqlText string) (*watcher, error) {
	cq, err := b.eng.Subscribe(sqlText)
	if err != nil {
		return nil, err
	}
	return &watcher{
		header: header(cq.Columns.Names()),
		next: func() (time.Time, []string, bool) {
			batch, ok := cq.Next()
			if !ok {
				return time.Time{}, nil, false
			}
			lines := make([]string, len(batch.Rows))
			for i, r := range batch.Rows {
				lines[i] = r.String()
			}
			return batch.Close, lines, true
		},
		stop: cq.Close,
	}, nil
}

func (b *localBackend) stats() string {
	s := b.eng.Stats()
	return fmt.Sprintf("sources=%d pipelines=%d sharedAggs=%d planGroups=%d planSubscribers=%d windowsFired=%d rowsProcessed=%d lateDropped=%d\n"+
		"sched: workers=%d runnable=%d steals=%d parks=%d",
		s.Sources, s.Pipelines, s.SharedAggs, s.PlanGroups, s.PlanSubscribers,
		s.WindowsFired, s.RowsProcessed, s.LateDropped,
		s.SchedWorkers, s.SchedRunnable, s.SchedSteals, s.SchedParks)
}

func (b *localBackend) traces() string {
	spans := b.eng.Traces()
	if len(spans) == 0 {
		return "no spans recorded (tracing disabled, or nothing sampled yet)"
	}
	lines := make([]string, len(spans))
	for i, s := range spans {
		lines[i] = formatSpan(fmt.Sprintf("%016x", s.Trace), string(s.Stage), s.Stream,
			s.Pipe, time.UnixMicro(s.Start), time.Duration(s.Dur), s.Rows, s.Slow)
	}
	return strings.Join(lines, "\n")
}

func (b *localBackend) close() { b.eng.Close() }

// ------------------------------------------------------------- remote

type remoteBackend struct{ c *client.Client }

func (b *remoteBackend) exec(sqlText string) (*result, error) {
	n, err := b.c.Exec(sqlText)
	if err != nil {
		return nil, err
	}
	return &result{affected: n}, nil
}

func (b *remoteBackend) query(sqlText string) (*result, error) {
	rows, err := b.c.Query(sqlText)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(rows.Columns))
	for i, c := range rows.Columns {
		names[i] = c.Name
	}
	out := &result{header: header(names)}
	for _, r := range rows.Data {
		out.rows = append(out.rows, r.String())
	}
	return out, nil
}

func (b *remoteBackend) watch(sqlText string) (*watcher, error) {
	sub, err := b.c.Subscribe(sqlText)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(sub.Columns))
	for i, c := range sub.Columns {
		names[i] = c.Name
	}
	return &watcher{
		header: header(names),
		next: func() (time.Time, []string, bool) {
			batch, ok := <-sub.C
			if !ok {
				return time.Time{}, nil, false
			}
			lines := make([]string, len(batch.Rows))
			for i, r := range batch.Rows {
				lines[i] = r.String()
			}
			return batch.Close, lines, true
		},
		stop: func() { sub.Close() },
	}, nil
}

func (b *remoteBackend) stats() string {
	rows, err := b.c.Stats()
	if err != nil {
		return fmt.Sprintf("stats: %v", err)
	}
	lines := make([]string, len(rows.Data))
	for i, r := range rows.Data {
		lines[i] = r.String()
	}
	return strings.Join(lines, "\n")
}

func (b *remoteBackend) traces() string {
	spans, err := b.c.Traces()
	if err != nil {
		return fmt.Sprintf("trace: %v", err)
	}
	if len(spans) == 0 {
		return "no spans recorded (tracing disabled, or nothing sampled yet)"
	}
	lines := make([]string, len(spans))
	for i, s := range spans {
		lines[i] = formatSpan(s.Trace, s.Stage, s.Stream, s.Pipe, s.Start, s.Dur, s.Rows, s.Slow)
	}
	return strings.Join(lines, "\n")
}

func (b *remoteBackend) close() { b.c.Close() }

func header(names []string) string { return strings.Join(names, "|") }
