package main

import (
	"os"
	"strings"
	"testing"

	"streamrel"
)

func TestSplitScript(t *testing.T) {
	got := splitScript(`CREATE TABLE t (a bigint); INSERT INTO t VALUES (1); SELECT 'a;b' FROM t`)
	if len(got) != 3 {
		t.Fatalf("split into %d: %q", len(got), got)
	}
	if !strings.Contains(got[2], "a;b") {
		t.Fatalf("semicolon inside quotes split: %q", got[2])
	}
	if len(splitScript("  ")) != 0 {
		t.Fatal("blank script")
	}
}

func newLocal(t *testing.T) backend {
	t.Helper()
	eng, err := streamrel.Open(streamrel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := &localBackend{eng: eng}
	t.Cleanup(b.close)
	return b
}

func TestLocalBackendExecQuery(t *testing.T) {
	b := newLocal(t)
	if _, err := b.exec(`CREATE TABLE t (a bigint, s varchar)`); err != nil {
		t.Fatal(err)
	}
	res, err := b.exec(`INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	if err != nil || res.affected != 2 {
		t.Fatalf("%+v %v", res, err)
	}
	q, err := b.query(`SELECT a, s FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if q.header != "a|s" || len(q.rows) != 2 || q.rows[0] != "1|x" {
		t.Fatalf("%+v", q)
	}
	// SHOW produces rows through exec.
	res, err = b.exec(`SHOW TABLES`)
	if err != nil || len(res.rows) != 1 || res.rows[0] != "t" {
		t.Fatalf("%+v %v", res, err)
	}
	if !strings.Contains(b.stats(), "pipelines=0") {
		t.Fatalf("stats: %s", b.stats())
	}
}

func TestLocalBackendWatch(t *testing.T) {
	b := newLocal(t)
	if _, err := b.exec(`CREATE STREAM s (v bigint, at timestamp CQTIME USER)`); err != nil {
		t.Fatal(err)
	}
	w, err := b.watch(`SELECT count(*) FROM s <ADVANCE '1 minute'>`)
	if err != nil {
		t.Fatal(err)
	}
	lb := b.(*localBackend)
	base := streamrel.MustTimestamp("2009-01-04 00:00:00")
	lb.eng.Append("s", streamrel.Row{streamrel.Int(7), streamrel.Timestamp(base.Add(1))})
	lb.eng.AdvanceTime("s", base.Add(61_000_000_000))
	close, rows, ok := w.next()
	if !ok || len(rows) != 1 || rows[0] != "1" {
		t.Fatalf("watch: %v %v %v", close, rows, ok)
	}
	w.stop()
}

func TestShellExecuteThroughPipe(t *testing.T) {
	b := newLocal(t)
	r, wpipe, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	sh := &shell{be: b, out: wpipe}
	sh.execute(`CREATE TABLE t (a bigint);`)
	sh.execute(`INSERT INTO t VALUES (42);`)
	sh.execute(`SELECT a FROM t;`)
	sh.execute(`SELECT broken FROM t;`)
	wpipe.Close()
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{"ok (0 rows affected)", "ok (1 rows affected)", "42", "(1 rows)", "error:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunScript(t *testing.T) {
	b := newLocal(t)
	sh := &shell{be: b, out: os.Stdout}
	err := sh.runScript(`
		CREATE TABLE t (a bigint);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.runScript(`BOGUS STATEMENT;`); err == nil {
		t.Fatal("script error not surfaced")
	}
}
