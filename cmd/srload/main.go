// Command srload generates a synthetic workload and drives it into a
// streamrel engine — either into a stream (continuous mode, the paper's
// architecture) or into a table (store-first mode, the baseline). It
// creates the schema if needed.
//
// Usage:
//
//	srload -workload clicks   -n 1000000 -mode stream -dir data/
//	srload -workload security -n 500000  -mode table  -dir data/
//	srload -workload ads      -n 200000  -mode stream
//
// Workloads: clicks (url_stream), security (sec_stream/sec_events),
// ads (imp_stream/impressions).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"streamrel"
	"streamrel/internal/types"
	"streamrel/internal/workload"
)

func main() {
	kind := flag.String("workload", "clicks", "clicks | security | ads")
	n := flag.Int("n", 100_000, "events to generate")
	mode := flag.String("mode", "stream", "stream (continuous) | table (store-first)")
	dir := flag.String("dir", "", "data directory (empty = in-memory; mostly useful with table mode)")
	seed := flag.Int64("seed", 1, "generator seed")
	rate := flag.Float64("rate", 2000, "events per second of stream time")
	flag.Parse()

	eng, err := streamrel.Open(streamrel.Config{Dir: *dir})
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	var gen interface {
		Take(int) []types.Row
		Now() int64
	}
	var streamName, tableName, streamDDL, tableDDL string
	start := time.Date(2009, 1, 4, 0, 0, 0, 0, time.UTC)
	switch *kind {
	case "clicks":
		gen = workload.NewClickstream(workload.ClickConfig{Seed: *seed, EventsPerSec: *rate, Start: start})
		streamName, tableName = "url_stream", "url_events"
		streamDDL = `CREATE STREAM IF NOT EXISTS url_stream (url varchar, atime timestamp CQTIME USER, client_ip varchar)`
		tableDDL = `CREATE TABLE IF NOT EXISTS url_events (url varchar, atime timestamp, client_ip varchar)`
	case "security":
		gen = workload.NewSecurityEvents(workload.SecurityConfig{Seed: *seed, EventsPerSec: *rate, Start: start})
		streamName, tableName = "sec_stream", "sec_events"
		streamDDL = `CREATE STREAM IF NOT EXISTS sec_stream (etime timestamp CQTIME USER, src_ip varchar, dst_port bigint, action varchar, bytes bigint)`
		tableDDL = `CREATE TABLE IF NOT EXISTS sec_events (etime timestamp, src_ip varchar, dst_port bigint, action varchar, bytes bigint)`
	case "ads":
		gen = workload.NewImpressions(workload.ImpressionConfig{Seed: *seed, EventsPerSec: *rate, Start: start})
		streamName, tableName = "imp_stream", "impressions"
		streamDDL = `CREATE STREAM IF NOT EXISTS imp_stream (itime timestamp CQTIME USER, campaign bigint, publisher bigint, cost bigint)`
		tableDDL = `CREATE TABLE IF NOT EXISTS impressions (itime timestamp, campaign bigint, publisher bigint, cost bigint)`
	default:
		fail(fmt.Errorf("unknown workload %q", *kind))
	}

	t0 := time.Now()
	const chunk = 10_000
	switch *mode {
	case "stream":
		if _, err := eng.Exec(streamDDL); err != nil {
			fail(err)
		}
		for done := 0; done < *n; done += chunk {
			c := chunk
			if *n-done < c {
				c = *n - done
			}
			if err := eng.Append(streamName, gen.Take(c)...); err != nil {
				fail(err)
			}
		}
		if err := eng.AdvanceTime(streamName, time.UnixMicro(gen.Now()+60_000_000).UTC()); err != nil {
			fail(err)
		}
	case "table":
		if _, err := eng.Exec(tableDDL); err != nil {
			fail(err)
		}
		for done := 0; done < *n; done += chunk {
			c := chunk
			if *n-done < c {
				c = *n - done
			}
			if err := eng.BulkInsert(tableName, gen.Take(c)); err != nil {
				fail(err)
			}
		}
	default:
		fail(fmt.Errorf("unknown mode %q", *mode))
	}
	elapsed := time.Since(t0)
	fmt.Printf("loaded %d %s events into %s mode in %s (%.0f events/s)\n",
		*n, *kind, *mode, elapsed.Round(time.Millisecond), float64(*n)/elapsed.Seconds())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "srload:", err)
	os.Exit(1)
}
