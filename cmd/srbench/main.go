// Command srbench regenerates the paper's evaluation: every figure and
// quantified claim mapped to an experiment in DESIGN.md §4 (F1, E1–E8),
// plus the engine's own scaling experiments (E9–E15).
//
// Usage:
//
//	srbench                 # run everything at full (laptop) scale
//	srbench -scale 0.1      # quicker pass
//	srbench -only E1,E3     # a subset
//	srbench -list           # show the experiment index
//	srbench -only E9 -json BENCH_fanout.json   # machine-readable results
//	srbench -only E15 -compare BENCH_sched.json  # deltas vs last stamped run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"streamrel/internal/experiments"
)

var index = []struct{ id, what string }{
	{"F1", "Figure 1: windows produce a sequence of tables — window kinds, correctness, throughput"},
	{"E1", "§4 case study: network-security report, store-first vs continuous (the 'orders of magnitude' claim)"},
	{"E2", "§1.1 growth sweep: report latency vs event volume"},
	{"E3", "§2.2 shared 'Jellybean' processing: k CQs shared vs unshared"},
	{"E4", "§5 materialized views: periodic refresh vs Active Tables (cost + staleness)"},
	{"E5", "§3.3/§6 stream-table joins: enrichment and Example 5 historical comparison"},
	{"E6", "§4 recovery: rebuild from Active Tables vs recompute from raw archive"},
	{"E7", "§5 map/reduce comparison: successive refreshes over a growing log"},
	{"E8", "§1.2 result-availability delay: batch period vs 1-minute windows"},
	{"E9", "parallel CQ fan-out: k CQs serial vs per-pipeline workers (Config.ParallelCQ)"},
	{"E10", "replication: replica apply-lag quantiles under live ingest (log shipping over loopback TCP)"},
	{"E11", "tracing overhead: ingest throughput with spans off / 1-in-256 sampled / every batch"},
	{"E12", "ingest hot path ladder: rows/s + allocs/row across fan-out, workers, Sync on/off"},
	{"E13", "shard scale-out ladder: keyed ingest rows/s + window fire latency, direct vs router over 1/2/4 shards"},
	{"E14", "incremental maintenance: fire latency vs window width, re-exec vs delta-maintained (internal/ivm)"},
	{"E15", "work-stealing scheduler + plan sharing: 100/1k/10k CQs, registration + ingest + fire latency, serial-equivalence gated"},
	{"E16", "self-observability overhead: ingest throughput with sysmon off / 1s default / 10ms aggressive, allocs/snapshot"},
}

// jsonReport is the machine-readable output format for -json: enough
// context (host, scale, date) for future PRs to track the throughput
// trajectory across runs.
type jsonReport struct {
	Suite      string               `json:"suite"`
	Scale      float64              `json:"scale"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	GitSHA     string               `json:"git_sha,omitempty"`
	GitDirty   bool                 `json:"git_dirty,omitempty"`
	Started    time.Time            `json:"started"`
	ElapsedMS  int64                `json:"elapsed_ms"`
	Tables     []*experiments.Table `json:"tables"`
	Durations  map[string]int64     `json:"experiment_ms"`
}

// gitStamp returns the short HEAD sha and whether the tree is dirty, so
// BENCH files become a trajectory: each result names the exact code it
// measured. Outside a git checkout both are zero values.
func gitStamp() (sha string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "", false
	}
	sha = strings.TrimSpace(string(out))
	st, err := exec.Command("git", "status", "--porcelain").Output()
	if err == nil && len(strings.TrimSpace(string(st))) > 0 {
		dirty = true
	}
	return sha, dirty
}

// stampedPath derives the trajectory filename for a report, in the
// bench_canonical-<UTCtimestamp>_<gitsha>[-dirty] style:
// BENCH_ingest.json → BENCH_ingest-20060102T150405Z_abc1234-dirty.json.
// Dirty-tree stamps land under bench-stamps/ (gitignored scratch space)
// so uncommitted runs never end up checked in next to the canonical
// trajectory files; clean stamps stay beside the base file.
func stampedPath(base string, started time.Time, sha string, dirty bool) string {
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(base, ext)
	stamp := started.UTC().Format("20060102T150405Z")
	name := fmt.Sprintf("%s-%s", stem, stamp)
	if sha != "" {
		name += "_" + sha
		if dirty {
			name += "-dirty"
		}
	}
	name += ext
	if dirty {
		return filepath.Join(filepath.Dir(base), "bench-stamps", filepath.Base(name))
	}
	return name
}

// baselineFor picks the comparison baseline for -compare: the most recent
// stamped sibling of the named trajectory file — bench-stamps/ scratch
// runs and clean stamps beside the base are both considered, newest
// modification time wins — falling back to the committed base file
// itself when no stamped run exists yet.
func baselineFor(base string) (string, error) {
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(filepath.Base(base), ext)
	var newest string
	var newestMod time.Time
	for _, dir := range []string{filepath.Join(filepath.Dir(base), "bench-stamps"), filepath.Dir(base)} {
		matches, _ := filepath.Glob(filepath.Join(dir, stem+"-*"+ext))
		for _, m := range matches {
			fi, err := os.Stat(m)
			if err != nil {
				continue
			}
			if newest == "" || fi.ModTime().After(newestMod) {
				newest, newestMod = m, fi.ModTime()
			}
		}
	}
	if newest != "" {
		return newest, nil
	}
	if _, err := os.Stat(base); err != nil {
		return "", fmt.Errorf("no baseline: %s has no stamped runs and does not exist itself", base)
	}
	return base, nil
}

// compareReport prints per-metric deltas between a baseline report and
// this run. It states facts (old → new, Δ%) without judging direction:
// rows_per_s metrics improve upward, _seconds and _ms metrics downward,
// and the reader (or -budget) decides what counts as a regression.
func compareReport(path string, tables []*experiments.Table) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old jsonReport
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	oldM := map[string]float64{}
	for _, t := range old.Tables {
		for k, v := range t.Metrics {
			oldM[k] = v
		}
	}
	newM := map[string]float64{}
	for _, t := range tables {
		for k, v := range t.Metrics {
			newM[k] = v
		}
	}
	order := make([]string, 0, len(newM))
	for k := range newM {
		order = append(order, k)
	}
	sort.Strings(order)
	fmt.Printf("\ncompare vs %s (sha %s, %s):\n", path, old.GitSHA, old.Started.Format("2006-01-02"))
	matched := 0
	for _, k := range order {
		ov, ok := oldM[k]
		if !ok {
			fmt.Printf("  %-44s %12s -> %12.3f  (new metric)\n", k, "-", newM[k])
			continue
		}
		matched++
		nv := newM[k]
		switch {
		case ov == 0 && nv == 0:
			fmt.Printf("  %-44s %12.3f -> %12.3f\n", k, ov, nv)
		case ov == 0:
			fmt.Printf("  %-44s %12.3f -> %12.3f  (baseline zero)\n", k, ov, nv)
		default:
			fmt.Printf("  %-44s %12.3f -> %12.3f  %+7.1f%%\n", k, ov, nv, (nv-ov)/ov*100)
		}
	}
	stale := 0
	for k := range oldM {
		if _, ok := newM[k]; !ok {
			stale++
		}
	}
	if stale > 0 {
		fmt.Printf("  (%d baseline metrics not measured this run — rerun the matching experiments to compare them)\n", stale)
	}
	if matched == 0 {
		return fmt.Errorf("compare: no overlapping metrics between this run and %s — wrong baseline file for -only selection?", path)
	}
	return nil
}

// checkBudget compares every metric the run produced against the maxima
// in a checked-in budget file (metric name → max allowed value). Metrics
// absent from the budget are unconstrained; budget entries the run didn't
// produce warn loudly on stderr but don't fail (a small -scale run may
// legitimately skip rungs) — a silently vanished metric must never read
// as a passing gate.
func checkBudget(path string, tables []*experiments.Table) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var budget map[string]float64
	if err := json.Unmarshal(data, &budget); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	got := map[string]float64{}
	for _, t := range tables {
		for k, v := range t.Metrics {
			got[k] = v
		}
	}
	var failures []string
	missing := 0
	for name, limit := range budget {
		v, ok := got[name]
		if !ok {
			missing++
			fmt.Fprintf(os.Stderr,
				"srbench: WARNING: budget key %q was not measured this run (limit %g) — "+
					"the gate did not check it; run the experiment that produces it "+
					"(or at a scale that does), or prune the key from the budget file\n",
				name, limit)
			continue
		}
		if v > limit {
			failures = append(failures, fmt.Sprintf("%s = %.3f exceeds budget %.3f", name, v, limit))
		} else {
			fmt.Printf("budget: %s = %.3f within %.3f\n", name, v, limit)
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "srbench: WARNING: %d of %d budget keys unchecked this run\n",
			missing, len(budget))
	}
	if len(failures) > 0 {
		return fmt.Errorf("budget exceeded:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "experiment size multiplier (1.0 = full laptop scale)")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "also write results as JSON to this file")
	stamp := flag.Bool("stamp", false, "additionally write a timestamped+git-sha'd copy of the -json file")
	budgetPath := flag.String("budget", "", "compare run metrics against this budget file (metric → max); exit non-zero on breach")
	comparePath := flag.String("compare", "", "print per-metric deltas vs the most recent stamped run of this trajectory file (falls back to the file itself)")
	flag.Parse()

	if *list {
		for _, e := range index {
			fmt.Printf("%-4s %s\n", e.id, e.what)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := map[string]func(experiments.Scale) (*experiments.Table, error){
		"F1": experiments.F1, "E1": experiments.E1, "E2": experiments.E2,
		"E3": experiments.E3, "E4": experiments.E4, "E5": experiments.E5,
		"E6": experiments.E6, "E7": experiments.E7, "E8": experiments.E8,
		"E9": experiments.E9, "E10": experiments.E10, "E11": experiments.E11,
		"E12": experiments.E12, "E13": experiments.E13, "E14": experiments.E14,
		"E15": experiments.E15, "E16": experiments.E16,
	}

	fmt.Printf("streamrel experiment suite (scale %.2g)\n", *scale)
	fmt.Printf("reproducing: Franklin et al., \"Continuous Analytics\", CIDR 2009\n\n")
	sha, dirty := gitStamp()
	report := &jsonReport{
		Suite:      "streamrel",
		Scale:      *scale,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitSHA:     sha,
		GitDirty:   dirty,
		Started:    time.Now().UTC(),
		Durations:  map[string]int64{},
	}
	start := time.Now()
	for _, e := range index {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		run, ok := runners[e.id]
		if !ok {
			continue
		}
		t0 := time.Now()
		table, err := run(experiments.Scale(*scale))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		took := time.Since(t0)
		fmt.Println(table.String())
		fmt.Printf("(%s took %s)\n\n", e.id, took.Round(time.Millisecond))
		report.Tables = append(report.Tables, table)
		report.Durations[e.id] = took.Milliseconds()
	}
	report.ElapsedMS = time.Since(start).Milliseconds()
	fmt.Printf("total: %s\n", time.Since(start).Round(time.Millisecond))

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		if *stamp {
			sp := stampedPath(*jsonPath, report.Started, sha, dirty)
			if dir := filepath.Dir(sp); dir != "." {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "json: %v\n", err)
					os.Exit(1)
				}
			}
			if err := os.WriteFile(sp, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", sp)
		}
	}
	if *comparePath != "" {
		base, err := baselineFor(*comparePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(1)
		}
		if err := compareReport(base, report.Tables); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}
	if *budgetPath != "" {
		if err := checkBudget(*budgetPath, report.Tables); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
	}
}
