package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamrel/client"
	"streamrel/internal/shard"
	"streamrel/internal/sql"
)

// runRouter is streamreld's -shards mode: no engine, just the shard
// router in front of the listed shard servers.
func runRouter(addr, shardList, initScript, metricsAddr string, traceSample int, logger *slog.Logger, fatal func(string, error)) {
	var addrs []string
	for _, a := range strings.Split(shardList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	r, err := shard.NewRouter(shard.Options{
		Addrs:            addrs,
		Log:              logger,
		TraceSampleEvery: traceSample,
	})
	if err != nil {
		fatal("router setup failed", err)
	}
	defer r.Close()
	if up := r.WaitReady(10 * time.Second); up < len(addrs) {
		logger.Warn("not all shards reachable at startup; routing degrades to partial results", "up", up, "shards", len(addrs))
	}

	bound, err := r.Listen(addr)
	if err != nil {
		fatal("listen failed", err)
	}
	fmt.Printf("streamreld listening on %s (router over %d shards: %s)\n", bound, len(addrs), shardList)

	if initScript != "" {
		if err := routerInit(bound, initScript); err != nil {
			fatal("init script failed", err)
		}
	}

	if metricsAddr != "" {
		mlis, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			fatal("metrics listen failed", err)
		}
		mux := http.NewServeMux()
		// Federated views: /metrics merges every shard's registry with the
		// router's own (shard-labeled series); /debug/traces stitches
		// distributed spans back together by trace ID.
		mux.Handle("/metrics", r.MetricsHandler())
		mux.Handle("/debug/traces", r.TracesHandler())
		mux.Handle("/healthz", r.HealthzHandler())
		mux.Handle("/readyz", r.ReadyzHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("metrics on http://%s/metrics\n", mlis.Addr())
		go func() {
			if err := http.Serve(mlis, mux); err != nil {
				logger.Warn("metrics server stopped", "error", err.Error())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		r.Close()
	}()
	if err := r.Serve(); err != nil {
		fatal("serve failed", err)
	}
}

// routerInit replays a SQL script through the router's own client
// protocol, so DDL broadcasts to every shard and the router's catalog
// mirror learns the schema — the supported way to re-seed a restarted
// router.
func routerInit(addr, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stmts, err := sql.ParseScript(string(data))
	if err != nil {
		return err
	}
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	for _, st := range stmts {
		if _, err := c.Exec(st.Text); err != nil {
			return fmt.Errorf("%s: %w", st.Text, err)
		}
	}
	return nil
}
