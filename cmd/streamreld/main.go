// Command streamreld runs a streamrel server: a durable (or in-memory)
// stream-relational engine reachable over TCP with the JSON line protocol
// (see internal/server and the client package).
//
// Usage:
//
//	streamreld -addr 127.0.0.1:7475 -dir data/ [-init schema.sql] [-metrics-addr 127.0.0.1:9090]
//	streamreld -addr 127.0.0.1:7476 -dir rep/ -replica-of 127.0.0.1:7475
//
// With -replica-of the node follows the given primary: it applies the
// primary's replication stream (tables, streams and DDL), runs its own
// continuous queries, serves read-only queries, and can be promoted to
// primary with the client's "promote" op.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/server"
	"streamrel/replica"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7475", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	initScript := flag.String("init", "", "SQL script to execute at startup")
	syncWAL := flag.Bool("sync", false, "fsync every commit")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = disabled)")
	replicaOf := flag.String("replica-of", "", "follow this primary address as a read replica")
	flag.Parse()

	// Replication is always enabled so any node can serve replicas —
	// including a promoted one.
	eng, err := streamrel.Open(streamrel.Config{Dir: *dir, SyncWAL: *syncWAL, Replicate: true})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if *initScript != "" {
		if *replicaOf != "" {
			log.Fatal("streamreld: -init and -replica-of are mutually exclusive (schema arrives from the primary)")
		}
		data, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.ExecScript(string(data)); err != nil {
			log.Fatalf("init script: %v", err)
		}
	}

	srv := server.New(eng)
	srv.Log = log.Default()
	if hub := eng.Repl(); hub != nil {
		srv.Replicate = hub.ServeConn
	}

	var rep *replica.Replica
	if *replicaOf != "" {
		rep, err = replica.New(replica.Options{
			Addr:   *replicaOf,
			Engine: eng,
			Dir:    *dir,
			Logf:   log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv.Promote = rep.Promote
		rep.Start()
		defer rep.Stop()
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	if *replicaOf != "" {
		fmt.Printf("streamreld listening on %s (dir=%q, replica of %s)\n", bound, *dir, *replicaOf)
	} else {
		fmt.Printf("streamreld listening on %s (dir=%q)\n", bound, *dir)
	}

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(eng.Metrics()))
		fmt.Printf("metrics on http://%s/metrics\n", mlis.Addr())
		go func() {
			if err := http.Serve(mlis, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
}
