// Command streamreld runs a streamrel server: a durable (or in-memory)
// stream-relational engine reachable over TCP with the JSON line protocol
// (see internal/server and the client package).
//
// Usage:
//
//	streamreld -addr 127.0.0.1:7475 -dir data/ [-init schema.sql] [-metrics-addr 127.0.0.1:9090]
//	streamreld -addr 127.0.0.1:7476 -dir rep/ -replica-of 127.0.0.1:7475
//	streamreld -addr 127.0.0.1:7480 -shards 127.0.0.1:7475,127.0.0.1:7476
//
// With -replica-of the node follows the given primary: it applies the
// primary's replication stream (tables, streams and DDL), runs its own
// continuous queries, serves read-only queries, and can be promoted to
// primary with the client's "promote" op.
//
// With -shards the process runs no engine at all: it becomes the shard
// router, speaking the same client protocol in front of the listed shard
// servers — appends split by each stream's PARTITION BY key, snapshot
// queries scatter-gather with a merge step, CQ subscriptions merge
// per-shard windows on close. The shard list order is the shard map;
// keep it stable across router restarts. DDL must flow through the
// router so every shard holds the same schema.
//
// The -metrics-addr listener serves Prometheus text at /metrics, the
// trace ring as JSON at /debug/traces, liveness and readiness probes at
// /healthz and /readyz (a replica reports unready while its apply lag
// exceeds -ready-max-lag), and Go profiling handlers under
// /debug/pprof/. On the router the same paths federate the whole
// cluster: /metrics merges every shard's registry with shard-labeled
// series and /debug/traces stitches distributed spans by trace ID. None
// of these endpoints have authentication: bind the metrics address to
// localhost or a private interface, never a public one.
//
// Engine nodes also snapshot their own telemetry into the reserved
// sys.* streams every -sysmon interval (default 1s), so the engine's
// continuous queries can watch the engine itself — `SELECT name,
// max(value) FROM sys.metrics <ADVANCE '5 seconds'> GROUP BY name` is a
// live alerting rule.
//
// Diagnostics go to stderr as structured JSON lines (log/slog); the
// startup banner stays on stdout.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/server"
	"streamrel/internal/trace"
	"streamrel/replica"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7475", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	initScript := flag.String("init", "", "SQL script to execute at startup")
	syncWAL := flag.Bool("sync", false, "fsync every commit")
	groupCommitDelay := flag.Duration("group-commit-delay", 0, "WAL group-commit leader wait before writing, to merge concurrent commits into one fsync (0 = write immediately; needs -sync)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/traces and /debug/pprof on this address (empty = disabled; keep it private)")
	replicaOf := flag.String("replica-of", "", "follow this primary address as a read replica")
	shards := flag.String("shards", "", "run as a shard router over this comma-separated list of shard servers (order is the shard map)")
	traceSample := flag.Int("trace-sample", 0, "trace one in N ingested batches (0 = default 1/256, 1 = every batch, negative = off)")
	slowFire := flag.Duration("slow-fire", 0, "force-record and log window fires slower than this push-to-fire latency (0 = off)")
	parallelCQ := flag.Int("parallel-cq", 0, "run continuous queries on the work-stealing pool with this mailbox backpressure bound in micro-batches (0 = synchronous engine)")
	schedWorkers := flag.Int("sched-workers", 0, "work-stealing pool size for -parallel-cq (0 = GOMAXPROCS)")
	sysmonEvery := flag.Duration("sysmon", time.Second, "snapshot engine telemetry into the sys.* streams this often (0 = off)")
	readyMaxLag := flag.Duration("ready-max-lag", 5*time.Second, "replica readiness threshold: /readyz fails while apply lag exceeds this")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err.Error())
		os.Exit(1)
	}

	if *shards != "" {
		if *replicaOf != "" || *dir != "" {
			logger.Error("-shards is mutually exclusive with -dir and -replica-of (the router runs no engine)")
			os.Exit(1)
		}
		runRouter(*addr, *shards, *initScript, *metricsAddr, *traceSample, logger, fatal)
		return
	}

	// Replication is always enabled so any node can serve replicas —
	// including a promoted one.
	eng, err := streamrel.Open(streamrel.Config{
		Dir:                 *dir,
		SyncWAL:             *syncWAL,
		GroupCommitMaxDelay: *groupCommitDelay,
		Replicate:           true,
		TraceSampleEvery:    *traceSample,
		SlowFireThreshold:   *slowFire,
		ParallelCQ:          *parallelCQ,
		SchedWorkers:        *schedWorkers,
		SysMonInterval:      *sysmonEvery,
		Logger:              logger,
	})
	if err != nil {
		fatal("engine open failed", err)
	}
	defer eng.Close()

	if *initScript != "" {
		if *replicaOf != "" {
			logger.Error("-init and -replica-of are mutually exclusive (schema arrives from the primary)")
			os.Exit(1)
		}
		data, err := os.ReadFile(*initScript)
		if err != nil {
			fatal("reading init script failed", err)
		}
		if err := eng.ExecScript(string(data)); err != nil {
			fatal("init script failed", err)
		}
	}

	srv := server.New(eng)
	srv.Log = logger
	if hub := eng.Repl(); hub != nil {
		srv.Replicate = hub.ServeConn
	}

	var rep *replica.Replica
	if *replicaOf != "" {
		rep, err = replica.New(replica.Options{
			Addr:   *replicaOf,
			Engine: eng,
			Dir:    *dir,
			Log:    logger,
		})
		if err != nil {
			fatal("replica setup failed", err)
		}
		srv.Promote = rep.Promote
		rep.Start()
		defer rep.Stop()
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal("listen failed", err)
	}
	if *replicaOf != "" {
		fmt.Printf("streamreld listening on %s (dir=%q, replica of %s)\n", bound, *dir, *replicaOf)
	} else {
		fmt.Printf("streamreld listening on %s (dir=%q)\n", bound, *dir)
	}

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("metrics listen failed", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(eng.Metrics()))
		mux.Handle("/debug/traces", trace.Handler(eng.Tracer()))
		mux.Handle("/healthz", healthzHandler())
		mux.Handle("/readyz", readyzHandler(rep, *readyMaxLag))
		// Profiling handlers registered on this explicit mux (not
		// http.DefaultServeMux) so they exist only on the metrics
		// listener. The metrics address must not be publicly reachable.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("metrics on http://%s/metrics\n", mlis.Addr())
		logger.Info("debug endpoints enabled", "addr", mlis.Addr().String(),
			"paths", "/metrics /debug/traces /healthz /readyz /debug/pprof/")
		go func() {
			if err := http.Serve(mlis, mux); err != nil {
				logger.Warn("metrics server stopped", "error", err.Error())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		logger.Info("shutting down", "signal", "interrupt/term", "time", time.Now().Format(time.RFC3339))
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		fatal("serve failed", err)
	}
}

// healthzHandler is the liveness probe: 200 while the process serves.
func healthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
}

// readyzHandler is the readiness probe. A primary is ready once it
// serves (recovery ran before Listen). A replica is additionally
// required to be applying within maxLag of the primary, so a load
// balancer drains replicas that fall too far behind to serve fresh
// reads.
func readyzHandler(rep *replica.Replica, maxLag time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if rep == nil {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		lag := rep.LagSeconds()
		if lag > maxLag.Seconds() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"status":"lagging","lag_seconds":%g,"threshold_seconds":%g}`+"\n",
				lag, maxLag.Seconds())
			return
		}
		fmt.Fprintf(w, `{"status":"ok","lag_seconds":%g}`+"\n", lag)
	})
}
