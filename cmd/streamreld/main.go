// Command streamreld runs a streamrel server: a durable (or in-memory)
// stream-relational engine reachable over TCP with the JSON line protocol
// (see internal/server and the client package).
//
// Usage:
//
//	streamreld -addr 127.0.0.1:7475 -dir data/ [-init schema.sql] [-metrics-addr 127.0.0.1:9090]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"streamrel"
	"streamrel/internal/metrics"
	"streamrel/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7475", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory)")
	initScript := flag.String("init", "", "SQL script to execute at startup")
	syncWAL := flag.Bool("sync", false, "fsync every commit")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics on this address (empty = disabled)")
	flag.Parse()

	eng, err := streamrel.Open(streamrel.Config{Dir: *dir, SyncWAL: *syncWAL})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	if *initScript != "" {
		data, err := os.ReadFile(*initScript)
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.ExecScript(string(data)); err != nil {
			log.Fatalf("init script: %v", err)
		}
	}

	srv := server.New(eng)
	srv.Log = log.Default()
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamreld listening on %s (dir=%q)\n", bound, *dir)

	if *metricsAddr != "" {
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler(eng.Metrics()))
		fmt.Printf("metrics on http://%s/metrics\n", mlis.Addr())
		go func() {
			if err := http.Serve(mlis, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		srv.Close()
	}()
	if err := srv.Serve(); err != nil {
		log.Fatal(err)
	}
}
