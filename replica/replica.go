// Package replica runs a streamrel engine as a read replica of a primary
// server: it connects with the client package's "replicate" op, applies
// the primary's replication frames (DDL, inserts/deletes at the
// primary's RowIDs, stream appends and heartbeats) into its local engine
// — which runs its own continuous queries, so local subscribers get
// window fires — reconnects with exponential backoff plus jitter when the
// primary goes away, persists its resume point, and supports explicit
// promotion to primary.
package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"streamrel"
	"streamrel/client"
	"streamrel/internal/metrics"
	"streamrel/internal/repl"
	"streamrel/internal/trace"
)

// Options configures a replica.
type Options struct {
	// Addr is the primary server's address.
	Addr string
	// Engine is the local engine events apply into. Open it with
	// Config.Replicate so promotion yields a working primary (and so
	// further replicas can chain off this node).
	Engine *streamrel.Engine
	// Dir, when non-empty, persists the resume point (run ID + last
	// applied LSN) to Dir/repl.state so a restarted replica resumes
	// incrementally instead of taking a full snapshot. Point it at the
	// engine's data directory.
	Dir string
	// Client sets dial and I/O timeouts for connections to the primary.
	Client client.Options
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults
	// 100ms / 5s); each retry doubles the delay and adds up to 50%
	// jitter.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Log receives structured connection lifecycle messages; nil
	// silences them.
	Log *slog.Logger
}

// state is the persisted resume point.
type state struct {
	Run string `json:"run"`
	LSN uint64 `json:"lsn"`
}

// idleTimeout is the per-frame read deadline. The primary pings about
// once a second, so a silent connection is dead, not idle.
const idleTimeout = 15 * time.Second

// Replica applies a primary's replication stream into a local engine.
type Replica struct {
	opts Options
	eng  *streamrel.Engine

	mu      sync.Mutex
	conn    net.Conn // current stream connection, for Stop to sever
	st      state
	started atomic.Bool
	stopped atomic.Bool
	stopCh  chan struct{}
	done    chan struct{}

	lastApplied atomic.Uint64
	lastPrimary atomic.Uint64
	// lastWallLag is the most recent apply lag in seconds, scaled 1e6.
	lastWallLag atomic.Int64

	framesApplied *metrics.Counter
	reconnects    *metrics.Counter
	snapsRecv     *metrics.Counter
	applyLag      *metrics.Histogram
}

// New creates a replica bound to its engine and loads any persisted
// resume point. The engine enters replica mode (writes rejected, channel
// taps quiet) immediately; Start begins streaming.
func New(opts Options) (*Replica, error) {
	if opts.Engine == nil {
		return nil, errors.New("replica: Options.Engine is required")
	}
	if opts.Addr == "" {
		return nil, errors.New("replica: Options.Addr is required")
	}
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	r := &Replica{opts: opts, eng: opts.Engine, stopCh: make(chan struct{}), done: make(chan struct{})}
	reg := opts.Engine.Metrics()
	r.framesApplied = reg.Counter("streamrel_repl_frames_applied_total",
		"replication frames applied by this replica")
	r.reconnects = reg.Counter("streamrel_repl_reconnects_total",
		"reconnect attempts to the primary")
	r.snapsRecv = reg.Counter("streamrel_repl_snapshots_received_total",
		"full snapshots received from the primary")
	r.applyLag = reg.Histogram("streamrel_repl_apply_lag_seconds",
		"primary publish to replica apply latency per frame", nil)
	reg.GaugeFunc("streamrel_repl_last_applied_lsn",
		"last primary LSN this replica applied",
		func() float64 { return float64(r.lastApplied.Load()) })
	reg.GaugeFunc("streamrel_repl_lag_lsn",
		"replication lag: primary LSN minus last applied LSN",
		func() float64 { return float64(r.LagLSN()) })
	reg.GaugeFunc("streamrel_repl_lag_seconds",
		"replication lag in seconds (latest frame's publish-to-apply delay)",
		func() float64 { return float64(r.lastWallLag.Load()) / 1e6 })
	if opts.Dir != "" {
		if data, err := os.ReadFile(r.statePath()); err == nil {
			var st state
			if json.Unmarshal(data, &st) == nil {
				r.st = st
				r.lastApplied.Store(st.LSN)
			}
		}
	}
	opts.Engine.BeginReplica()
	return r, nil
}

func (r *Replica) statePath() string { return filepath.Join(r.opts.Dir, "repl.state") }

func (r *Replica) log(msg string, args ...any) {
	if r.opts.Log != nil {
		r.opts.Log.Info(msg, args...)
	}
}

// Start launches the connect/apply loop.
func (r *Replica) Start() {
	if r.started.Swap(true) {
		return
	}
	go r.run()
}

// Stop severs the stream and stops reconnecting; the resume point is
// persisted. The engine stays in replica mode (use Promote to lift it).
func (r *Replica) Stop() {
	if !r.stopped.Swap(true) {
		close(r.stopCh)
		r.mu.Lock()
		if r.conn != nil {
			r.conn.Close()
		}
		r.mu.Unlock()
	}
	if r.started.Load() {
		<-r.done
	}
	r.mu.Lock()
	r.persistLocked()
	r.mu.Unlock()
}

// Promote stops replication and promotes the local engine to primary:
// writes are accepted and channel taps resume. The engine keeps its own
// replication hub, so new replicas can chain off this node.
func (r *Replica) Promote() error {
	r.Stop()
	r.eng.Promote()
	return nil
}

// LastLSN returns the last primary LSN this replica applied.
func (r *Replica) LastLSN() uint64 { return r.lastApplied.Load() }

// PrimaryLSN returns the primary's most recently observed LSN.
func (r *Replica) PrimaryLSN() uint64 { return r.lastPrimary.Load() }

// LagLSN returns the current LSN delta to the primary.
func (r *Replica) LagLSN() uint64 {
	p, a := r.lastPrimary.Load(), r.lastApplied.Load()
	if p <= a {
		return 0
	}
	return p - a
}

// LagSeconds returns the wall-clock apply lag of the most recent
// replicated event — how far behind the primary this replica ran when it
// last applied something. Readiness probes compare it to a threshold.
func (r *Replica) LagSeconds() float64 { return float64(r.lastWallLag.Load()) / 1e6 }

// WaitFor blocks until the replica has applied at least lsn. Use this
// with the primary hub's LSN() when ground truth is at hand; unlike
// WaitCaughtUp it cannot be satisfied by a stale view of the primary.
func (r *Replica) WaitFor(lsn uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.lastApplied.Load() >= lsn {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("replica: lsn %d not applied after %v (at %d)",
		lsn, timeout, r.lastApplied.Load())
}

// WaitCaughtUp blocks until the replica has applied every LSN the
// primary has published at some point after the call (lag 0 with an
// established connection), or the timeout elapses.
func (r *Replica) WaitCaughtUp(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if r.lastPrimary.Load() > 0 && r.LagLSN() == 0 {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("replica: not caught up after %v (applied %d, primary %d)",
		timeout, r.lastApplied.Load(), r.lastPrimary.Load())
}

// run is the reconnect loop: dial, stream, apply until failure, back off,
// repeat. Backoff resets after any successfully applied frame.
func (r *Replica) run() {
	defer close(r.done)
	backoff := r.opts.BackoffMin
	for !r.stopped.Load() {
		applied, err := r.streamOnce()
		if r.stopped.Load() {
			return
		}
		if err != nil {
			if r.opts.Log != nil {
				r.opts.Log.Warn("replication stream failed", "primary", r.opts.Addr, "error", err.Error())
			}
		}
		if applied {
			backoff = r.opts.BackoffMin
		}
		// Exponential backoff with up to 50% jitter so a herd of replicas
		// does not reconnect in lockstep.
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)/2+1))
		if backoff *= 2; backoff > r.opts.BackoffMax {
			backoff = r.opts.BackoffMax
		}
		timer := time.NewTimer(sleep)
		select {
		case <-timer.C:
		case <-r.stopCh:
			timer.Stop()
			return
		}
		r.reconnects.Inc()
	}
}

// streamOnce runs one connection lifetime: handshake, then apply frames
// until the stream fails or Stop severs it. applied reports whether at
// least one frame was applied (used to reset backoff).
func (r *Replica) streamOnce() (applied bool, err error) {
	c, err := client.DialOptions(r.opts.Addr, r.opts.Client)
	if err != nil {
		return false, err
	}
	defer c.Close()
	r.mu.Lock()
	run, lsn := r.st.Run, r.st.LSN
	r.mu.Unlock()
	rs, err := c.Replicate(lsn, run)
	if err != nil {
		return false, err
	}
	defer rs.Close()
	r.mu.Lock()
	r.conn = rs.Conn
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.conn = nil
		r.mu.Unlock()
	}()

	for {
		rs.Conn.SetReadDeadline(time.Now().Add(idleTimeout))
		ev, err := repl.ReadEvent(rs.R)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return applied, nil
			}
			return applied, err
		}
		if r.stopped.Load() {
			return applied, nil
		}
		if err := r.apply(ev); err != nil {
			return applied, fmt.Errorf("apply %v frame (lsn %d): %w", ev.Kind, ev.LSN, err)
		}
		applied = true
	}
}

// apply dispatches one frame into the engine and maintains the resume
// point and lag metrics.
func (r *Replica) apply(ev *repl.Event) error {
	r.framesApplied.Inc()
	if ev.LSN > r.lastPrimary.Load() {
		r.lastPrimary.Store(ev.LSN)
	}
	switch ev.Kind {
	case repl.KindPing:
		r.observeLag(ev, false)
		return nil

	case repl.KindResume:
		r.mu.Lock()
		r.st.Run = ev.Run
		r.mu.Unlock()
		r.log("resuming replication", "lsn", r.lastApplied.Load(), "run", ev.Run)
		return nil

	case repl.KindSnapBegin:
		r.snapsRecv.Inc()
		r.mu.Lock()
		hadState := r.st.Run != "" || r.lastApplied.Load() > 0
		r.st = state{Run: ev.Run}
		r.mu.Unlock()
		r.log("receiving snapshot", "run", ev.Run)
		if hadState {
			// Different run (or a too-stale resume point): drop local
			// state and rebuild from the snapshot.
			if err := r.eng.ReplicaReset(); err != nil {
				return err
			}
		}
		return nil

	case repl.KindSnapEnd:
		r.advanceApplied(ev.LSN)
		r.mu.Lock()
		r.st.LSN = ev.LSN
		err := r.persistLocked()
		r.mu.Unlock()
		r.log("snapshot complete", "lsn", ev.LSN)
		return err

	case repl.KindTableNext:
		return r.eng.ApplyReplicatedTableNext(ev.Table, ev.Next)

	case repl.KindWAL:
		start := r.spanStart(ev)
		if err := r.eng.ApplyReplicated(ev.Recs); err != nil {
			return err
		}
		stream := ""
		if len(ev.Recs) > 0 {
			stream = ev.Recs[0].Table
		}
		r.recordApply(ev, start, stream, len(ev.Recs))
		return r.applied(ev)

	case repl.KindAppend:
		start := r.spanStart(ev)
		if err := r.eng.ApplyReplicatedAppend(ev.Stream, ev.Rows, ev.Trace); err != nil {
			return err
		}
		r.recordApply(ev, start, ev.Stream, len(ev.Rows))
		return r.applied(ev)

	case repl.KindAdvance:
		if err := r.eng.ApplyReplicatedAdvance(ev.Stream, ev.TS); err != nil {
			return err
		}
		return r.applied(ev)

	case repl.KindCheckpoint:
		if err := r.eng.ReplicaCheckpoint(); err != nil {
			return err
		}
		return r.applied(ev)
	}
	return fmt.Errorf("replica: unknown frame kind %d", ev.Kind)
}

// spanStart returns the wall-clock start for a traced frame's
// replica-apply span, or the zero time for untraced frames.
func (r *Replica) spanStart(ev *repl.Event) time.Time {
	if ev.Trace == 0 || r.eng.Tracer() == nil {
		return time.Time{}
	}
	return time.Now()
}

// recordApply closes a traced frame's span chain on this replica: the
// span shares the primary's trace ID, so reading the replica's trace ring
// shows where a traced primary batch landed remotely.
func (r *Replica) recordApply(ev *repl.Event, start time.Time, stream string, rows int) {
	if start.IsZero() {
		return
	}
	r.eng.Tracer().Record(trace.Span{Trace: ev.Trace, Stage: trace.StageReplicaApply,
		Stream: stream, Start: start.UnixMicro(),
		Dur: time.Since(start).Nanoseconds(), Rows: rows})
}

// applied records a live event's LSN, observes lag, and persists the
// resume point after every applied event. WAL events are idempotent, but
// stream appends are not — re-applying one double-counts its rows in
// window/CQ state observed by this replica's local subscribers — so the
// crash redo window must stay at most the single event whose persist was
// in flight, not a batch of them.
func (r *Replica) applied(ev *repl.Event) error {
	if ev.LSN == 0 {
		return nil // snapshot state frame: resume point moves at SnapEnd
	}
	r.advanceApplied(ev.LSN)
	r.observeLag(ev, true)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.st.LSN = ev.LSN
	return r.persistLocked()
}

func (r *Replica) advanceApplied(lsn uint64) {
	if lsn > r.lastApplied.Load() {
		r.lastApplied.Store(lsn)
	}
}

// observeLag converts the frame's publish wall clock into the seconds-lag
// gauge (and, for applied events, the apply-lag histogram). Clock skew
// between nodes can make the delta negative; clamp to zero.
func (r *Replica) observeLag(ev *repl.Event, histogram bool) {
	if ev.Wall == 0 {
		return
	}
	lag := time.Now().UnixMicro() - ev.Wall
	if lag < 0 {
		lag = 0
	}
	r.lastWallLag.Store(lag)
	if histogram {
		r.applyLag.Observe(float64(lag) / 1e6)
	}
}

// persistLocked writes the resume point (tmp + rename). Callers hold r.mu.
func (r *Replica) persistLocked() error {
	if r.opts.Dir == "" {
		return nil
	}
	data, err := json.Marshal(r.st)
	if err != nil {
		return err
	}
	tmp := r.statePath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, r.statePath())
}
