package replica_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"streamrel"
	"streamrel/internal/server"
	"streamrel/replica"
)

// node is one engine + TCP server pair.
type node struct {
	eng  *streamrel.Engine
	srv  *server.Server
	addr string
}

func startNode(t *testing.T, dir, listen string) *node {
	t.Helper()
	eng, err := streamrel.Open(streamrel.Config{Dir: dir, Replicate: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	srv.Replicate = eng.Repl().ServeConn
	addr, err := srv.Listen(listen)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	return &node{eng: eng, srv: srv, addr: addr}
}

func (n *node) stop() {
	n.srv.Close()
	n.eng.Close()
}

func startReplica(t *testing.T, addr, dir string) (*streamrel.Engine, *replica.Replica) {
	t.Helper()
	eng, err := streamrel.Open(streamrel.Config{Dir: dir, Replicate: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replica.New(replica.Options{
		Addr:       addr,
		Engine:     eng,
		Dir:        dir,
		BackoffMin: 20 * time.Millisecond,
		BackoffMax: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start()
	return eng, rep
}

func mustExec(t *testing.T, e *streamrel.Engine, sql string) {
	t.Helper()
	if _, err := e.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// dump renders a query result as one deterministic string.
func dump(t *testing.T, e *streamrel.Engine, sql string) string {
	t.Helper()
	rows, err := e.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	var b strings.Builder
	for _, r := range rows.Data {
		for i, d := range r {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(d.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// waitConverged polls until the query renders identically (and non-empty,
// unless allowEmpty) on both engines.
func waitConverged(t *testing.T, a, b *streamrel.Engine, sql string, allowEmpty bool) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var da, db string
	for time.Now().Before(deadline) {
		da, db = dump(t, a, sql), dump(t, b, sql)
		if da == db && (allowEmpty || da != "") {
			return da
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no convergence on %q:\nprimary:\n%s\nreplica:\n%s", sql, da, db)
	return ""
}

func metric(t *testing.T, e *streamrel.Engine, id string) float64 {
	t.Helper()
	for _, s := range e.Metrics().Gather() {
		if s.ID() == id {
			return s.Value
		}
	}
	return 0
}

// TestReplicaConvergesUnderConcurrentIngest drives table writes and
// stream ingest concurrently while a fresh replica bootstraps from a
// snapshot, then checks tables, archived CQ results, and the stream
// clock all converge.
func TestReplicaConvergesUnderConcurrentIngest(t *testing.T) {
	prim := startNode(t, "", "127.0.0.1:0")
	defer prim.stop()
	mustExec(t, prim.eng, `CREATE TABLE kv (k bigint, v varchar)`)
	mustExec(t, prim.eng, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, prim.eng, `CREATE STREAM agg AS SELECT sum(v) AS total, cq_close(*) AS w FROM s <ADVANCE '1 minute'>`)
	mustExec(t, prim.eng, `CREATE TABLE agg_t (total bigint, w timestamp)`)
	mustExec(t, prim.eng, `CREATE CHANNEL ch FROM agg INTO agg_t APPEND`)

	reng, rep := startReplica(t, prim.addr, "")
	defer reng.Close()
	defer rep.Stop()

	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := prim.eng.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'v%d')`, i, i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			ts := base.Add(time.Duration(i) * 30 * time.Second)
			if err := prim.eng.Append("s", streamrel.Row{streamrel.Int(int64(i)), streamrel.Timestamp(ts)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	// Close every window.
	if err := prim.eng.AdvanceTime("s", base.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}

	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, prim.eng, reng, `SELECT k, v FROM kv ORDER BY k`, false)
	waitConverged(t, prim.eng, reng, `SELECT total, w FROM agg_t ORDER BY w`, false)

	// Writes on the replica are rejected while it follows.
	if _, err := reng.Exec(`INSERT INTO kv VALUES (999, 'no')`); !errors.Is(err, streamrel.ErrReadReplica) {
		t.Fatalf("replica write: got %v, want ErrReadReplica", err)
	}
	if err := reng.Append("s", streamrel.Row{streamrel.Int(1), streamrel.Timestamp(base)}); !errors.Is(err, streamrel.ErrReadReplica) {
		t.Fatalf("replica append: got %v, want ErrReadReplica", err)
	}

	// Lag metrics are exported and settled.
	if lag := metric(t, reng, "streamrel_repl_lag_lsn"); lag != 0 {
		t.Fatalf("repl_lag_lsn = %v, want 0", lag)
	}
	if applied := metric(t, reng, "streamrel_repl_last_applied_lsn"); applied == 0 {
		t.Fatal("repl_last_applied_lsn not exported")
	}
}

// TestReplicaRestartResumesIncrementally stops a durable replica, writes
// more on the primary, restarts the replica from its data directory, and
// checks it catches up from its persisted LSN without a new snapshot.
func TestReplicaRestartResumesIncrementally(t *testing.T) {
	prim := startNode(t, "", "127.0.0.1:0")
	defer prim.stop()
	mustExec(t, prim.eng, `CREATE TABLE t (a bigint)`)
	for i := 0; i < 10; i++ {
		mustExec(t, prim.eng, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}

	dir := t.TempDir()
	reng, rep := startReplica(t, prim.addr, dir)
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, prim.eng, reng, `SELECT a FROM t ORDER BY a`, false)
	resumeAt := rep.LastLSN()
	rep.Stop()
	if err := reng.Close(); err != nil {
		t.Fatal(err)
	}

	for i := 10; i < 20; i++ {
		mustExec(t, prim.eng, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}

	reng2, rep2 := startReplica(t, prim.addr, dir)
	defer reng2.Close()
	defer rep2.Stop()
	if rep2.LastLSN() != resumeAt {
		t.Fatalf("restarted replica resumes at %d, want persisted %d", rep2.LastLSN(), resumeAt)
	}
	if err := rep2.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, prim.eng, reng2, `SELECT a FROM t ORDER BY a`, false)
	if snaps := metric(t, reng2, "streamrel_repl_snapshots_received_total"); snaps != 0 {
		t.Fatalf("restart took %v snapshots, want incremental resume", snaps)
	}
}

// TestReplicaResyncsAfterPrimaryRestart restarts the primary (new run
// ID, same data) and checks the replica detects the epoch change and
// rebuilds from a fresh snapshot.
func TestReplicaResyncsAfterPrimaryRestart(t *testing.T) {
	pdir := t.TempDir()
	prim := startNode(t, pdir, "127.0.0.1:0")
	mustExec(t, prim.eng, `CREATE TABLE t (a bigint)`)
	mustExec(t, prim.eng, `INSERT INTO t VALUES (1), (2)`)

	reng, rep := startReplica(t, prim.addr, t.TempDir())
	defer reng.Close()
	defer rep.Stop()
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	addr := prim.addr
	prim.stop()
	prim2 := startNode(t, pdir, addr) // same address, new run ID
	defer prim2.stop()
	mustExec(t, prim2.eng, `INSERT INTO t VALUES (3)`)

	if err := rep.WaitCaughtUp(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, prim2.eng, reng, `SELECT a FROM t ORDER BY a`, false)
	if snaps := metric(t, reng, "streamrel_repl_snapshots_received_total"); snaps < 2 {
		t.Fatalf("snapshots received = %v, want initial + post-restart resync", snaps)
	}
}

// TestPromoteAfterPrimaryDeath kills the primary, promotes the replica,
// and checks writes succeed on the promoted node.
func TestPromoteAfterPrimaryDeath(t *testing.T) {
	prim := startNode(t, "", "127.0.0.1:0")
	mustExec(t, prim.eng, `CREATE TABLE t (a bigint)`)
	mustExec(t, prim.eng, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	mustExec(t, prim.eng, `INSERT INTO t VALUES (1)`)

	reng, rep := startReplica(t, prim.addr, "")
	defer reng.Close()
	if err := rep.WaitCaughtUp(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	prim.stop()
	if err := rep.Promote(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, reng, `INSERT INTO t VALUES (2)`)
	if got := dump(t, reng, `SELECT a FROM t ORDER BY a`); got != "1\n2\n" {
		t.Fatalf("after promote:\n%s", got)
	}
	// Stream ingest works again too (channel taps and stamping resume).
	if err := reng.Append("s", streamrel.Row{streamrel.Int(1), streamrel.Timestamp(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))}); err != nil {
		t.Fatal(err)
	}
}
