package replica_test

import (
	"testing"
	"time"

	"streamrel"
	"streamrel/internal/server"
	"streamrel/internal/trace"
	"streamrel/replica"
)

// startTracedPair starts a primary node and an attached replica, both with
// every-batch tracing (the harness startNode hardcodes default tracing, so
// the trace tests build their own pair).
func startTracedPair(t *testing.T) (*node, *streamrel.Engine, *replica.Replica) {
	t.Helper()
	peng, err := streamrel.Open(streamrel.Config{Replicate: true, TraceSampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(peng)
	srv.Replicate = peng.Repl().ServeConn
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	prim := &node{eng: peng, srv: srv, addr: addr}

	reng, err := streamrel.Open(streamrel.Config{Replicate: true, TraceSampleEvery: 1})
	if err != nil {
		prim.stop()
		t.Fatal(err)
	}
	rep, err := replica.New(replica.Options{
		Addr:       addr,
		Engine:     reng,
		BackoffMin: 20 * time.Millisecond,
		BackoffMax: 200 * time.Millisecond,
	})
	if err != nil {
		reng.Close()
		prim.stop()
		t.Fatal(err)
	}
	rep.Start()
	return prim, reng, rep
}

// TestReplicaApplySharesPrimaryTraceID is the end-to-end acceptance check:
// a sampled batch ingested on the primary produces a replica-apply span on
// the replica under the SAME trace ID as the primary's ingest span.
func TestReplicaApplySharesPrimaryTraceID(t *testing.T) {
	prim, reng, rep := startTracedPair(t)
	defer prim.stop()
	defer reng.Close()
	defer rep.Stop()

	mustExec(t, prim.eng, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Rows appended before the replica finishes bootstrapping arrive via
	// snapshot, not the live event stream, so keep appending fresh rows
	// until one crosses the wire as a traced append event.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if err := prim.eng.Append("s",
			streamrel.Row{streamrel.Int(int64(i)), streamrel.Timestamp(base.Add(time.Duration(i) * time.Second))}); err != nil {
			t.Fatal(err)
		}
		for _, sp := range reng.Traces() {
			if sp.Stage != trace.StageReplicaApply {
				continue
			}
			primIngest := make(map[uint64]bool)
			for _, psp := range prim.eng.Traces() {
				if psp.Stage == trace.StageIngest && psp.Stream == "s" {
					primIngest[psp.Trace] = true
				}
			}
			// Same trace ID on both sides of the wire: the replica's
			// apply span must sit under a trace the primary started at
			// ingest. (The replica adopts the ID rather than re-sampling,
			// so it records no second ingest span.)
			if !primIngest[sp.Trace] {
				t.Fatalf("replica-apply span %016x does not match any primary ingest trace", sp.Trace)
			}
			if sp.Stream != "s" || sp.Rows == 0 {
				t.Fatalf("replica-apply span missing stream/rows: %+v", sp)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replica never recorded a replica-apply span")
}
