package streamrel

import (
	"strings"
	"testing"
)

// sqlCase is one statement with its expected output (rows joined by
// newlines) or expected error substring.
type sqlCase struct {
	sql     string
	want    string // expected rows, "|"-separated columns, "\n"-separated rows
	wantErr string // substring of the expected error
	exec    bool   // run through Exec instead of Query
}

// TestSQLSuite is a broad regression net: a single engine executes a long
// script covering the dialect surface, with expected outputs inline.
func TestSQLSuite(t *testing.T) {
	e := openMem(t)
	setup := `
		CREATE TABLE nums (n bigint, f double, s varchar);
		INSERT INTO nums VALUES
			(1, 1.5, 'one'), (2, 2.5, 'two'), (3, NULL, 'three'),
			(4, 4.5, NULL), (NULL, 5.5, 'five');
		CREATE TABLE pairs (k bigint, v varchar);
		INSERT INTO pairs VALUES (1, 'a'), (2, 'b'), (2, 'B'), (5, 'e');
	`
	if err := e.ExecScript(setup); err != nil {
		t.Fatal(err)
	}

	cases := []sqlCase{
		// Scalar shapes.
		{sql: `SELECT 1 + 2 * 3, 'a' || 'b', 10 / 4, 10.0 / 4`, want: "7|ab|2|2.5"},
		{sql: `SELECT CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END`, want: "yes"},
		{sql: `SELECT coalesce(NULL, NULL, 3)`, want: "3"},
		{sql: `SELECT interval '1 hour' + interval '30 minutes'`, want: "1 hour 30 minutes"},
		{sql: `SELECT timestamp '2009-01-04 09:00:00' + interval '90 minutes'`,
			want: "2009-01-04 10:30:00.000000"},
		{sql: `SELECT timestamp '2009-01-05' - timestamp '2009-01-04'`, want: "1 day"},

		// Filters and NULL semantics.
		{sql: `SELECT n FROM nums WHERE f > 2 ORDER BY n NULLS LAST`, want: "2\n4\nNULL"},
		{sql: `SELECT count(*) FROM nums WHERE f > 2`, want: "3"},
		{sql: `SELECT n FROM nums WHERE f IS NULL`, want: "3"},
		{sql: `SELECT count(*) FROM nums WHERE NULL`, want: "0"},
		{sql: `SELECT n FROM nums WHERE s LIKE 't%' ORDER BY n`, want: "2\n3"},
		{sql: `SELECT n FROM nums WHERE n BETWEEN 2 AND 3 ORDER BY n`, want: "2\n3"},
		{sql: `SELECT n FROM nums WHERE n IN (1, 3, 99) ORDER BY n`, want: "1\n3"},

		// Aggregates.
		{sql: `SELECT count(*), count(n), count(f), sum(n), avg(n) FROM nums`,
			want: "5|4|4|10|2.5"},
		{sql: `SELECT min(s), max(s) FROM nums`, want: "five|two"},
		{sql: `SELECT count(distinct v) FROM pairs`, want: "4"},
		{sql: `SELECT k, count(*) FROM pairs GROUP BY k HAVING count(*) = 1 ORDER BY k`,
			want: "1|1\n5|1"},
		{sql: `SELECT sum(n) FROM nums WHERE n > 100`, want: "NULL"},

		// Joins.
		{sql: `SELECT n, v FROM nums JOIN pairs ON n = k ORDER BY n, v`,
			want: "1|a\n2|B\n2|b"},
		{sql: `SELECT n, v FROM nums LEFT JOIN pairs ON n = k WHERE n IS NOT NULL ORDER BY n, v NULLS FIRST`,
			want: "1|a\n2|B\n2|b\n3|NULL\n4|NULL"},
		{sql: `SELECT count(*) FROM nums, pairs`, want: "20"},

		// Subqueries and set ops.
		{sql: `SELECT total FROM (SELECT sum(n) AS total FROM nums) t`, want: "10"},
		{sql: `SELECT n FROM nums WHERE n IS NOT NULL
		       EXCEPT SELECT k FROM pairs ORDER BY 1`, want: "3\n4"},
		{sql: `SELECT k FROM pairs INTERSECT SELECT n FROM nums ORDER BY 1`, want: "1\n2"},
		{sql: `SELECT 1 UNION SELECT 1 UNION ALL SELECT 1`, want: "1\n1"},

		// Sorting and paging.
		{sql: `SELECT n FROM nums ORDER BY n DESC NULLS LAST LIMIT 2`, want: "4\n3"},
		{sql: `SELECT n FROM nums ORDER BY n NULLS FIRST LIMIT 2 OFFSET 1`, want: "1\n2"},
		{sql: `SELECT s FROM nums WHERE s IS NOT NULL ORDER BY length(s), s`,
			want: "one\ntwo\nfive\nthree"},

		// DISTINCT.
		{sql: `SELECT DISTINCT k FROM pairs ORDER BY k`, want: "1\n2\n5"},

		// Functions.
		{sql: `SELECT upper(s) FROM nums WHERE n = 1`, want: "ONE"},
		{sql: `SELECT substr(s, 2, 2) FROM nums WHERE n = 3`, want: "hr"},
		{sql: `SELECT round(f, 0) FROM nums WHERE n = 2`, want: "3.0"},
		{sql: `SELECT year(timestamp '2009-01-04'), dow(timestamp '2009-01-04')`, want: "2009|0"},

		// DML through Exec.
		{sql: `UPDATE nums SET s = 'THREE' WHERE n = 3`, exec: true},
		{sql: `SELECT s FROM nums WHERE n = 3`, want: "THREE"},
		{sql: `DELETE FROM nums WHERE n IS NULL`, exec: true},
		{sql: `SELECT count(*) FROM nums`, want: "4"},

		// Errors.
		{sql: `SELECT missing FROM nums`, wantErr: "does not exist"},
		{sql: `SELECT n FROM nums GROUP BY s`, wantErr: "GROUP BY"},
		{sql: `SELECT * FROM nums WHERE s > 1`, wantErr: "compare"},
		{sql: `SELECT n/0 FROM nums`, wantErr: "division by zero"},
	}

	for _, c := range cases {
		if c.exec {
			if _, err := e.Exec(c.sql); err != nil {
				t.Errorf("Exec(%s): %v", c.sql, err)
			}
			continue
		}
		rows, err := e.Query(c.sql)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Query(%s): error %v, want substring %q", c.sql, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("Query(%s): %v", c.sql, err)
			continue
		}
		var got []string
		for _, r := range rows.Data {
			got = append(got, r.String())
		}
		if strings.Join(got, "\n") != c.want {
			t.Errorf("Query(%s):\ngot:\n%s\nwant:\n%s", c.sql, strings.Join(got, "\n"), c.want)
		}
	}
}
