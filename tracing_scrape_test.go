package streamrel

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamrel/internal/metrics"
	"streamrel/internal/trace"
)

// TestTracingScrapeUnderIngest hammers the two observability HTTP
// endpoints — /metrics (registry gather + Prometheus render) and
// /debug/traces (trace ring snapshot) — while parallel ingest, window
// fires, tracing and the sysmon ticker all mutate the state being scraped.
// Run under -race (the CI observability lane does) this proves a scrape is
// safe at any moment; every /metrics body must also parse as valid
// exposition.
func TestTracingScrapeUnderIngest(t *testing.T) {
	e, err := Open(Config{
		ParallelCQ:       4,
		TraceSampleEvery: 1,
		SysMonInterval:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE STREAM s (v bigint, at timestamp CQTIME USER)`)
	cq, err := e.Subscribe(`SELECT count(*) FROM s <VISIBLE 100 ROWS ADVANCE 50 ROWS>`)
	if err != nil {
		t.Fatal(err)
	}
	defer cq.Close()
	go func() {
		for {
			if _, ok := cq.Next(); !ok {
				return
			}
		}
	}()

	metricsSrv := httptest.NewServer(metrics.Handler(e.Metrics()))
	defer metricsSrv.Close()
	tracesSrv := httptest.NewServer(trace.Handler(e.Tracer()))
	defer tracesSrv.Close()

	const (
		ingesters = 4
		scrapers  = 2
		rowsEach  = 300
	)
	base := MustTimestamp("2009-01-04 00:00:00")
	errs := make(chan error, ingesters+2*scrapers)
	var ingestDone atomic.Bool

	var ingestWG sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		ingestWG.Add(1)
		go func(g int) {
			defer ingestWG.Done()
			// All rows share one timestamp: streams are ordered on CQTIME,
			// and the row window above advances on counts, not time.
			for i := 0; i < rowsEach; i++ {
				if err := e.Append("s", Row{Int(int64(i)), Timestamp(base)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// Scrapers run until ingest completes, so scrapes overlap the whole
	// ingest window.
	var scrapeWG sync.WaitGroup
	scrape := func(url string, validate func(string) error) {
		defer scrapeWG.Done()
		client := metricsSrv.Client()
		for !ingestDone.Load() {
			resp, err := client.Get(url)
			if err != nil {
				errs <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if err := validate(string(body)); err != nil {
				errs <- err
				return
			}
		}
	}
	for g := 0; g < scrapers; g++ {
		scrapeWG.Add(2)
		go scrape(metricsSrv.URL, func(body string) error {
			_, err := metrics.ParseExposition(strings.NewReader(body))
			return err
		})
		go scrape(tracesSrv.URL, func(string) error { return nil })
	}

	ingestWG.Wait()
	ingestDone.Store(true)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// A final scrape must still be valid and carry the ingest totals.
	resp, err := metricsSrv.Client().Get(metricsSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	parsed, err := metrics.ParseExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var rows float64
	for i := range parsed {
		if parsed[i].Name == "streamrel_stream_rows_total" && parsed[i].Labels["stream"] == "s" {
			rows = parsed[i].Value
		}
	}
	if want := float64(ingesters * rowsEach); rows != want {
		t.Errorf("streamrel_stream_rows_total{stream=s} = %v, want %v", rows, want)
	}
}
